package sessiond

import (
	"encoding/json"
	"testing"
	"time"
)

// TestStatsJSONShape pins the stats payload's wire shape — the fields a
// fleet operator's tooling greps for. The admission gauges must always
// be present (not omitempty), and after a pinball failure the breakers
// array must carry the per-pinball state including the cooldown
// deadline once the circuit opens.
func TestStatsJSONShape(t *testing.T) {
	f := makeDaemonFixture(t)
	_, addr := startServer(t, Config{
		Supervisor: fastSup(),
		Breaker:    BreakerConfig{K: 1, Cooldown: time.Minute},
	})
	c := dialT(t, addr)

	// One corrupt-pinball failure opens the K=1 circuit.
	if resp := c.do(&Request{Op: OpReplay, File: f.src, Pinball: f.garbage}); resp.OK || resp.Code != CodeCorrupt {
		t.Fatalf("garbage pinball: %+v", resp)
	}

	resp := c.do(&Request{Op: OpStats})
	if !resp.OK {
		t.Fatalf("stats: %+v", resp)
	}
	var shape map[string]any
	if err := json.Unmarshal(resp.Result, &shape); err != nil {
		t.Fatalf("stats payload: %v", err)
	}
	for _, key := range []string{"received", "accepted", "rejected", "completed", "failed",
		"active", "queued", "breakers_open", "breakers",
		"engine_cache_entries", "engine_cache_cap", "graph_cache_entries", "graph_cache_cap"} {
		if _, ok := shape[key]; !ok {
			t.Fatalf("stats JSON missing %q: %s", key, resp.Result)
		}
	}
	brks, ok := shape["breakers"].([]any)
	if !ok || len(brks) != 1 {
		t.Fatalf("breakers shape: %v", shape["breakers"])
	}
	brk, ok := brks[0].(map[string]any)
	if !ok {
		t.Fatalf("breaker entry shape: %v", brks[0])
	}
	for _, key := range []string{"pinball", "open", "consecutive", "last_code", "cooldown_until_ms"} {
		if _, ok := brk[key]; !ok {
			t.Fatalf("breaker entry missing %q: %v", key, brk)
		}
	}
	if brk["open"] != true || brk["last_code"] != CodeCorrupt {
		t.Fatalf("breaker entry: %v", brk)
	}
	if ms, ok := brk["cooldown_until_ms"].(float64); !ok || ms <= 0 {
		t.Fatalf("cooldown deadline: %v", brk["cooldown_until_ms"])
	}

	// The typed view must agree with the raw shape.
	var st StatsResult
	if err := json.Unmarshal(resp.Result, &st); err != nil {
		t.Fatal(err)
	}
	if st.BreakersOpen != 1 || len(st.Breakers) != 1 || !st.Breakers[0].Open {
		t.Fatalf("typed stats: %+v", st)
	}
	if st.Breakers[0].Consecutive != 1 || st.Breakers[0].CooldownUntilMS == 0 {
		t.Fatalf("breaker state: %+v", st.Breakers[0])
	}
}

// TestSliceShardOverTCP chains slice_shard requests across the wire —
// the round trip every fleet hop makes — and checks the final digest
// against the whole-slice op's on the same server.
func TestSliceShardOverTCP(t *testing.T) {
	f := makeDaemonFixture(t)
	_, addr := startServer(t, Config{Supervisor: fastSup()})
	c := dialT(t, addr)

	whole := c.do(&Request{Op: OpSlice, File: f.src, Pinball: f.good, Var: "counter", Workers: 2})
	if !whole.OK {
		t.Fatalf("whole slice: %+v", whole)
	}
	var want SliceResult
	if err := json.Unmarshal(whole.Result, &want); err != nil {
		t.Fatal(err)
	}
	if want.Digest == "" {
		t.Fatalf("whole slice carries no digest: %+v", want)
	}

	// Fleet ops are gated on the protocol version.
	if resp := c.do(&Request{Op: OpSliceShard, File: f.src, Pinball: f.good, Var: "counter"}); resp.OK || resp.Code != CodeBadRequest {
		t.Fatalf("v1 slice_shard not rejected: %+v", resp)
	}

	var state json.RawMessage
	var got ShardResult
	for hop := 0; ; hop++ {
		if hop > 100 {
			t.Fatal("shard chain did not converge")
		}
		resp := c.do(&Request{
			Op: OpSliceShard, Proto: ProtoV2,
			File: f.src, Pinball: f.good, Var: "counter",
			Workers: 2, ShardWindows: 1, State: state,
		})
		if !resp.OK {
			t.Fatalf("hop %d: %+v", hop, resp)
		}
		if err := json.Unmarshal(resp.Result, &got); err != nil {
			t.Fatal(err)
		}
		if got.Done {
			break
		}
		state = got.State
	}
	if got.Digest != want.Digest || got.Members != want.Members ||
		int(got.Deps) != want.Deps || got.TraceLen != want.TraceLen {
		t.Fatalf("sharded result %+v != whole-slice %+v", got, want)
	}
}
