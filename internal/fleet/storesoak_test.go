package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pinplay"
	"repro/internal/sessiond"
	"repro/internal/store"

	drdebug "repro"
)

// TestStoreChaosSoak is the content-addressed store's multi-process
// acceptance soak: a real drserved coordinator over three real workers,
// each backed by its own store root, with every client referencing the
// recording by digest only — no pinball paths cross the wire. Mid-run:
//
//   - one worker is SIGKILLed (taking its replica with it);
//   - a chunk object on a surviving replica is bit-flipped under load;
//   - GC runs concurrently against a live worker's store root.
//
// The invariants: every accepted request either completes correctly
// (healed replicas annotated, results digest-identical to a single-node
// daemon resolving the same digest) or fails typed — never a transport
// error, never silently wrong bytes; and GC reclaims only unpinned,
// unreferenced entries — the pinned decoy and the in-use digest survive.
//
// Scale: DRDEBUG_SOAK_REQS (make store-chaos) sets requests per client
// and raises the client count to 100.
func TestStoreChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process soak skipped in -short")
	}
	clients, reqsPerClient := 20, 2
	if s := os.Getenv("DRDEBUG_SOAK_REQS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad DRDEBUG_SOAK_REQS=%q", s)
		}
		clients, reqsPerClient = 100, n
	}

	f := makeFleetFixture(t)
	data, err := os.ReadFile(f.good)
	if err != nil {
		t.Fatal(err)
	}
	digest := store.Digest(data)

	// Single-node reference: the same digest resolved through a local
	// store by an in-process daemon.
	refStore, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := refStore.Put(data, store.PutMeta{Kind: "soak"}); err != nil {
		t.Fatal(err)
	}
	refCfg := fastWorkerConfig()
	refCfg.Store = refStore
	ref := sessiond.New(refCfg)
	refResp := ref.Execute(&sessiond.Request{Op: sessiond.OpSlice, File: f.src, Digest: digest, Var: "counter", Workers: 2}, "ref")
	if !refResp.OK {
		t.Fatalf("single-node digest slice: %+v", refResp)
	}
	var want sessiond.SliceResult
	if err := json.Unmarshal(refResp.Result, &want); err != nil {
		t.Fatal(err)
	}

	// The fleet: coordinator + three workers, each with its own store.
	bin := buildDrserved(t)
	storeDir := t.TempDir()
	roots := [3]string{}
	for i := range roots {
		roots[i] = filepath.Join(storeDir, fmt.Sprintf("w%d", i+1))
	}
	coord, coordAddr := startDaemon(t, bin, "coordinator",
		"-coordinator", "-addr", "127.0.0.1:0",
		"-heartbeat-interval", "100ms", "-heartbeat-miss", "3",
		"-hedge-after", "500ms", "-shard-windows", "4",
		"-retries", "3", "-backoff", "5ms",
		"-drain-timeout", "10s")
	_ = coord
	var workers [3]*exec.Cmd
	var workerAddrs [3]string
	for i := range workers {
		workers[i], workerAddrs[i] = startDaemon(t, bin, fmt.Sprintf("w%d", i+1),
			"-addr", "127.0.0.1:0", "-join", coordAddr,
			"-worker-name", fmt.Sprintf("w%d", i+1),
			"-store", roots[i],
			"-max-sessions", "8", "-max-queue", "32")
	}

	// Wait until all three workers registered, then seed the store
	// through the coordinator: the put lands on the digest's rendezvous
	// owner and is replicated to its successor (2 of 3 roots).
	probe, err := sessiond.Dial(coordAddr)
	if err != nil {
		t.Fatal(err)
	}
	waitDeadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := probe.Do(&sessiond.Request{Op: sessiond.OpStats})
		if err != nil {
			t.Fatalf("stats: %v", err)
		}
		var st sessiond.StatsResult
		if json.Unmarshal(resp.Result, &st) == nil && st.Active == 3 {
			break
		}
		if time.Now().After(waitDeadline) {
			t.Fatalf("workers never registered: %+v", resp)
		}
		time.Sleep(20 * time.Millisecond)
	}
	putResp, err := probe.Do(&sessiond.Request{
		Op: sessiond.OpStorePut, Proto: sessiond.ProtoCurrent,
		Blob: data, StoreKind: "soak",
	})
	if err != nil || !putResp.OK {
		t.Fatalf("store put via coordinator: err=%v resp=%+v", err, putResp)
	}
	var put sessiond.StorePutResult
	if err := json.Unmarshal(putResp.Result, &put); err != nil {
		t.Fatal(err)
	}
	if put.Digest != digest {
		t.Fatalf("coordinator put digest %s, want %s", put.Digest, digest)
	}
	if len(put.Replicas) < 2 {
		t.Fatalf("put replicated to %v, want a primary and one successor", put.Replicas)
	}
	probe.Close()

	// GC bait on every root that holds a replica: an unpinned decoy
	// (must be reclaimed) and a pinned decoy (must survive any policy).
	// The store only accepts real pinballs, so both are recordings of
	// the same program under different seeds.
	decoy := recordSoakPinball(t, f.src, 8)
	pinnedBytes := recordSoakPinball(t, f.src, 9)
	var holders []int // worker indexes whose roots hold a replica
	var decoyDigest, pinnedDigest string
	for i, root := range roots {
		s, err := store.Open(root)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Stat(digest); err != nil {
			continue // not a replica holder
		}
		holders = append(holders, i)
		dres, err := s.Put(decoy, store.PutMeta{Kind: "decoy"})
		if err != nil {
			t.Fatal(err)
		}
		decoyDigest = dres.Digest
		pres, err := s.Put(pinnedBytes, store.PutMeta{Kind: "pinned"})
		if err != nil {
			t.Fatal(err)
		}
		pinnedDigest = pres.Digest
		if err := s.Pin(pres.Digest); err != nil {
			t.Fatal(err)
		}
	}
	if len(holders) != 2 {
		t.Fatalf("%d roots hold the digest, want 2 (primary + successor)", len(holders))
	}
	// The chaos cast: kill the worker without a replica (its shard work
	// redispatches), corrupt one live holder's replica under load (it
	// must heal from the other), and GC the remaining clean holder.
	killIdx := 3 - holders[0] - holders[1]
	corruptIdx, gcIdx := holders[0], holders[1]
	corruptRoot, gcRoot := roots[corruptIdx], roots[gcIdx]
	hotChunks := soakChunkObjects(t, corruptRoot, digest)

	// Touch times have second granularity: let the decoys age past one
	// tick so the soak's first validated read makes the hot digest
	// strictly the most recently used entry on every root.
	time.Sleep(1100 * time.Millisecond)

	var (
		transportErrs atomic.Int64
		sliceOK       atomic.Int64
		sliceBad      atomic.Int64
		healed        atomic.Int64
		degraded      atomic.Int64
		typedFailures atomic.Int64
		postChaosOK   atomic.Int64
	)
	chaosDone := make(chan struct{})
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := sessiond.DialTimeout(coordAddr, 10*time.Second)
			if err != nil {
				transportErrs.Add(1)
				return
			}
			defer c.Close()
			for r := 0; r < reqsPerClient; r++ {
				// Digest-only sessions: no client ever names a pinball path.
				req := sessiond.Request{
					Op: sessiond.OpSlice, File: f.src, Digest: digest,
					Var: "counter", Workers: 2,
					Client: fmt.Sprintf("store-soak-%d", ci),
				}
				if (ci+r)%4 == 3 {
					// Replays route whole to the digest's rendezvous worker,
					// so store annotations (healed/salvaged) reach the client
					// unmerged.
					req = sessiond.Request{
						Op: sessiond.OpReplay, File: f.src, Digest: digest,
						Client: req.Client,
					}
				}
				var resp *sessiond.Response
				for attempt := 0; attempt < 8; attempt++ {
					resp, err = c.Do(&req)
					if err != nil {
						transportErrs.Add(1)
						return
					}
					if resp.Code == sessiond.CodeOverload || resp.Code == sessiond.CodeNoWorkers {
						time.Sleep(100 * time.Millisecond)
						continue
					}
					break
				}
				switch resp.Code {
				case sessiond.CodeHealed:
					healed.Add(1)
				case sessiond.CodeRedispatched, sessiond.CodeSalvaged, sessiond.CodeDegraded:
					degraded.Add(1)
				}
				if !resp.OK {
					typedFailures.Add(1)
					if resp.Code == "" {
						t.Errorf("client %d: untyped failure: %+v", ci, resp)
					}
					continue
				}
				select {
				case <-chaosDone:
					postChaosOK.Add(1)
				default:
				}
				if req.Op != sessiond.OpSlice {
					continue
				}
				if resp.Code == sessiond.CodeSalvaged || resp.Code == sessiond.CodeDegraded ||
					resp.Code == sessiond.CodeEstimated {
					continue // honestly-degraded content is annotated, not digest-compared
				}
				var got sessiond.SliceResult
				if json.Unmarshal(resp.Result, &got) != nil || got.Digest != want.Digest ||
					got.Members != want.Members || got.Deps != want.Deps {
					sliceBad.Add(1)
					t.Errorf("client %d: digest slice diverged from single-node: %+v != %+v", ci, got, want)
				} else {
					sliceOK.Add(1)
				}
			}
		}(ci)
	}

	// Concurrent GC against the clean holder's root for the whole soak:
	// it must never collect the pinned decoy, a leased entry, or the
	// hot digest (touched by every validated read), and must never make
	// a live read fail — the decoy itself is reclaimed by the stricter
	// final pass below once the soak's touches have aged it to the
	// bottom of the LRU order.
	gcStop := make(chan struct{})
	var gcWG sync.WaitGroup
	gcWG.Add(1)
	go func() {
		defer gcWG.Done()
		s, err := store.Open(gcRoot)
		if err != nil {
			t.Errorf("gc open: %v", err)
			return
		}
		for {
			select {
			case <-gcStop:
				return
			case <-time.After(50 * time.Millisecond):
			}
			if _, err := s.GC(store.GCPolicy{KeepLast: 2}); err != nil {
				t.Errorf("concurrent gc: %v", err)
				return
			}
		}
	}()

	// Mid-run chaos: the replica-less worker dies outright mid-fetch;
	// then one live holder's replica is bit-flipped while reads are in
	// flight, and its spool copy dropped so the next digest session must
	// re-materialize through the damaged objects — and heal from the
	// surviving clean holder.
	time.Sleep(300 * time.Millisecond)
	if err := workers[killIdx].Process.Kill(); err != nil {
		t.Fatalf("SIGKILL w%d: %v", killIdx+1, err)
	}
	time.Sleep(200 * time.Millisecond)
	victim := hotChunks[0]
	obj, err := os.ReadFile(victim)
	if err != nil {
		t.Fatalf("read hot chunk %s: %v", victim, err)
	}
	obj[len(obj)/2] ^= 0x20
	if err := os.WriteFile(victim, obj, 0o644); err != nil {
		t.Fatalf("flip hot chunk: %v", err)
	}
	t.Logf("corrupted under load: bit-flipped %s (chunk of %s)", victim, digest)
	cs, err := store.Open(corruptRoot)
	if err != nil {
		t.Fatal(err)
	}
	os.Remove(cs.SpoolPath(digest))
	close(chaosDone)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(3 * time.Minute):
		t.Fatal("soak clients did not finish: store fleet deadlocked")
	}
	close(gcStop)
	gcWG.Wait()

	if n := transportErrs.Load(); n != 0 {
		t.Errorf("%d transport errors surfaced to clients (want 0: every answer typed)", n)
	}
	if sliceBad.Load() != 0 {
		t.Errorf("%d digest slices diverged from the single-node answer", sliceBad.Load())
	}
	if sliceOK.Load() == 0 {
		t.Error("no digest slice completed at all")
	}
	if postChaosOK.Load() == 0 {
		t.Error("nothing completed after the kill+corruption: the store fleet did not survive")
	}
	t.Logf("store soak: %d slices digest-checked, %d healed, %d degraded/redispatched, %d typed failures, %d completed post-chaos",
		sliceOK.Load(), healed.Load(), degraded.Load(), typedFailures.Load(), postChaosOK.Load())

	// Post-soak probes straight at the two surviving workers: each must
	// still answer a digest-only replay typed — the corrupted holder by
	// healing from its peer (or failing typed), the GC'd holder from its
	// retained replica.
	for _, wi := range []int{corruptIdx, gcIdx} {
		wc, err := sessiond.DialTimeout(workerAddrs[wi], 10*time.Second)
		if err != nil {
			t.Errorf("dial surviving worker w%d: %v", wi+1, err)
			continue
		}
		resp, err := wc.Do(&sessiond.Request{Op: sessiond.OpReplay, File: f.src, Digest: digest})
		wc.Close()
		if err != nil {
			t.Errorf("probe w%d: transport error %v (want a typed response)", wi+1, err)
			continue
		}
		if !resp.OK && resp.Code == "" {
			t.Errorf("probe w%d: untyped failure: %+v", wi+1, resp)
		}
		t.Logf("post-soak probe w%d: ok=%v code=%q", wi+1, resp.OK, resp.Code)
	}

	// Retention audit on the GC'd root: the pinned decoy survived every
	// concurrent pass, the in-use digest (touched by every validated
	// read) survived, and a final KeepLast:1 pass reclaims the untouched
	// unpinned decoy while still refusing to touch the pinned entry.
	// The probe's session lease on the hot digest may still be draining
	// (the worker releases it just after writing the response); while it
	// is held the hot entry is excluded from GC candidates and the decoy
	// is the newest remaining one — so retry until the lease clears.
	s, err := store.Open(gcRoot)
	if err != nil {
		t.Fatal(err)
	}
	auditDeadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := s.GC(store.GCPolicy{KeepLast: 1}); err != nil {
			t.Fatalf("final gc: %v", err)
		}
		if _, err := s.Stat(decoyDigest); err != nil {
			break // decoy reclaimed
		}
		if time.Now().After(auditDeadline) {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if _, err := s.Stat(pinnedDigest); err != nil {
		t.Errorf("GC collected the pinned entry %s: %v", pinnedDigest, err)
	}
	if _, err := s.Stat(digest); err != nil {
		t.Errorf("GC collected the in-use digest %s: %v", digest, err)
	}
	if _, err := s.Stat(decoyDigest); err == nil {
		t.Errorf("GC never reclaimed the unpinned, unreferenced decoy %s", decoyDigest)
	}
	// The corrupted replica must never have been "repaired" silently:
	// either its damage is still detectable, or a heal replaced it with
	// bytes that re-validate — both end in a store whose live content
	// for the hot digest is correct or typed.
	if got, err := cs.Get(digest); err == nil {
		if store.Digest(got) != digest {
			t.Error("corrupted replica serves bytes that do not hash to the digest")
		}
	} else if !storeTypedSoakErr(err) {
		t.Errorf("corrupted replica read failed untyped: %v", err)
	}
}

// soakChunkObjects reads a store root's manifest directly and returns
// the on-disk object paths of one entry's chunks, so the soak can flip
// a byte in a chunk that provably belongs to the hot digest rather than
// whatever object happens to sort first.
func soakChunkObjects(t *testing.T, root, digest string) []string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(root, "manifest.db"))
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, line := range strings.Split(string(raw), "\n") {
		var rec struct {
			Op    string `json:"op"`
			Entry struct {
				Digest string `json:"digest"`
				Chunks []struct {
					Digest string `json:"digest"`
				} `json:"chunks"`
			} `json:"entry"`
		}
		if json.Unmarshal([]byte(line), &rec) != nil || rec.Op != "add" || rec.Entry.Digest != digest {
			continue
		}
		paths = paths[:0] // last add wins, like the manifest replay
		for _, c := range rec.Entry.Chunks {
			paths = append(paths, filepath.Join(root, "objects", c.Digest[:2], c.Digest))
		}
	}
	if len(paths) == 0 {
		t.Fatalf("no manifest add record for %s under %s", digest, root)
	}
	return paths
}

// recordSoakPinball logs one more recording of the fixture program
// under a distinct seed and returns its encoded bytes — a valid pinball
// with its own content digest, for GC-retention bait.
func recordSoakPinball(t *testing.T, src string, seed int64) []byte {
	t.Helper()
	prog, err := drdebug.CompileFile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	input := make([]int64, 64)
	for i := range input {
		input[i] = int64(i + 1)
	}
	pb, err := pinplay.Log(prog, pinplay.LogConfig{
		Seed: seed, MeanQuantum: 13, Input: input, CheckpointEvery: 8,
	}, pinplay.RegionSpec{})
	if err != nil {
		t.Fatalf("log seed %d: %v", seed, err)
	}
	data, err := pb.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// storeTypedSoakErr mirrors the store's typed-read contract.
func storeTypedSoakErr(err error) bool {
	for _, sentinel := range []error{
		store.ErrObjectCorrupt, store.ErrObjectMissing, store.ErrDigestMismatch,
		store.ErrManifestCorrupt, store.ErrManifestTorn, store.ErrNotFound,
	} {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	return false
}
