package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/sessiond"
)

// TestFleetChaosSoak is the multi-process acceptance soak: a real
// drserved coordinator and three real drserved workers (separate OS
// processes, built from cmd/drserved), hammered by concurrent clients
// while one worker is SIGKILLed and another is SIGSTOPped mid-run.
// The invariants:
//
//   - every accepted request terminates in a typed response — never a
//     transport error surfaced to a client;
//   - every completed slice is bit-identical (by digest) to the same
//     query answered by a single-node daemon;
//   - the fleet keeps completing work after losing two of three
//     workers;
//   - a SIGTERM drain of the coordinator completes cleanly.
//
// Scale: DRDEBUG_SOAK_REQS (make fleet-soak) sets requests per client
// and raises the client count to 100; the default in-tree run is
// scaled down so the tier-1 suite stays fast.
func TestFleetChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process soak skipped in -short")
	}
	clients, reqsPerClient := 20, 2
	if s := os.Getenv("DRDEBUG_SOAK_REQS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad DRDEBUG_SOAK_REQS=%q", s)
		}
		clients, reqsPerClient = 100, n
	}

	f := makeFleetFixture(t)
	garbage := filepath.Join(t.TempDir(), "garbage.pinball")
	if err := os.WriteFile(garbage, []byte("not a pinball at all"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Single-node reference digest: the same engine code the worker
	// binaries run.
	ref := sessiond.New(fastWorkerConfig())
	refResp := ref.Execute(&sessiond.Request{Op: sessiond.OpSlice, File: f.src, Pinball: f.good, Var: "counter", Workers: 2}, "ref")
	if !refResp.OK {
		t.Fatalf("reference slice: %+v", refResp)
	}
	var want sessiond.SliceResult
	if err := json.Unmarshal(refResp.Result, &want); err != nil {
		t.Fatal(err)
	}

	bin := buildDrserved(t)
	coord, coordAddr := startDaemon(t, bin, "coordinator",
		"-coordinator", "-addr", "127.0.0.1:0",
		"-heartbeat-interval", "100ms", "-heartbeat-miss", "3",
		"-hedge-after", "500ms", "-shard-windows", "4",
		"-retries", "3", "-backoff", "5ms",
		"-drain-timeout", "10s")
	var workers [3]*exec.Cmd
	for i := range workers {
		workers[i], _ = startDaemon(t, bin, fmt.Sprintf("w%d", i+1),
			"-addr", "127.0.0.1:0", "-join", coordAddr,
			"-worker-name", fmt.Sprintf("w%d", i+1),
			"-max-sessions", "8", "-max-queue", "32")
	}

	// Wait until all three workers registered.
	probe, err := sessiond.Dial(coordAddr)
	if err != nil {
		t.Fatal(err)
	}
	waitDeadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := probe.Do(&sessiond.Request{Op: sessiond.OpStats})
		if err != nil {
			t.Fatalf("stats: %v", err)
		}
		var st sessiond.StatsResult
		if json.Unmarshal(resp.Result, &st) == nil && st.Active == 3 {
			break
		}
		if time.Now().After(waitDeadline) {
			t.Fatalf("workers never registered: %+v", resp)
		}
		time.Sleep(20 * time.Millisecond)
	}
	probe.Close()

	// The client fleet. Typed refusals (overload shedding, a breaker
	// fast-fail) are legitimate answers and retried a bounded number of
	// times; transport errors are not.
	var (
		transportErrs atomic.Int64
		sliceOK       atomic.Int64
		sliceBad      atomic.Int64
		redispatched  atomic.Int64
		typedFailures atomic.Int64
		postKillOK    atomic.Int64
	)
	killed := make(chan struct{})
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := sessiond.DialTimeout(coordAddr, 10*time.Second)
			if err != nil {
				transportErrs.Add(1)
				return
			}
			defer c.Close()
			for r := 0; r < reqsPerClient; r++ {
				var req sessiond.Request
				switch (ci + r) % 5 {
				case 0, 1, 2: // slice: the digest-checked path
					req = sessiond.Request{Op: sessiond.OpSlice, File: f.src, Pinball: f.good, Var: "counter", Workers: 2}
				case 3: // replay
					req = sessiond.Request{Op: sessiond.OpReplay, File: f.src, Pinball: f.good}
				case 4: // poison: must come back typed, never crash anything
					req = sessiond.Request{Op: sessiond.OpReplay, File: f.src, Pinball: garbage}
				}
				req.Client = fmt.Sprintf("soak-%d", ci)
				var resp *sessiond.Response
				for attempt := 0; attempt < 8; attempt++ {
					resp, err = c.Do(&req)
					if err != nil {
						transportErrs.Add(1)
						return
					}
					if resp.Code == sessiond.CodeOverload || resp.Code == sessiond.CodeNoWorkers {
						time.Sleep(100 * time.Millisecond) // shed: back off and retry
						continue
					}
					break
				}
				if resp.Code == sessiond.CodeRedispatched {
					redispatched.Add(1)
				}
				if !resp.OK {
					typedFailures.Add(1)
					continue
				}
				select {
				case <-killed:
					postKillOK.Add(1)
				default:
				}
				if req.Op == sessiond.OpSlice {
					var got sessiond.SliceResult
					if json.Unmarshal(resp.Result, &got) != nil || got.Digest != want.Digest ||
						got.Members != want.Members || got.Deps != want.Deps {
						sliceBad.Add(1)
						t.Errorf("client %d: slice diverged from single-node: %+v != %+v", ci, got, want)
					} else {
						sliceOK.Add(1)
					}
				}
			}
		}(ci)
	}

	// Mid-run chaos: one worker dies outright, another freezes (alive at
	// the TCP level, silent at the protocol level — the straggler case).
	time.Sleep(400 * time.Millisecond)
	if err := workers[0].Process.Kill(); err != nil {
		t.Fatalf("SIGKILL w1: %v", err)
	}
	close(killed)
	time.Sleep(300 * time.Millisecond)
	if err := workers[1].Process.Signal(syscall.SIGSTOP); err != nil {
		t.Fatalf("SIGSTOP w2: %v", err)
	}
	defer workers[1].Process.Signal(syscall.SIGCONT)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(3 * time.Minute):
		t.Fatal("soak clients did not finish: fleet deadlocked")
	}

	if n := transportErrs.Load(); n != 0 {
		t.Errorf("%d transport errors surfaced to clients (want 0: every answer typed)", n)
	}
	if sliceBad.Load() != 0 {
		t.Errorf("%d slices diverged from the single-node digest", sliceBad.Load())
	}
	if sliceOK.Load() == 0 {
		t.Error("no slice completed at all")
	}
	if postKillOK.Load() == 0 {
		t.Error("nothing completed after the worker kill: the fleet did not survive")
	}
	t.Logf("soak: %d slices digest-checked, %d typed failures, %d redispatched, %d completed post-kill",
		sliceOK.Load(), typedFailures.Load(), redispatched.Load(), postKillOK.Load())

	// Graceful drain: SIGTERM the coordinator and require a clean exit.
	if err := coord.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM coordinator: %v", err)
	}
	exited := make(chan error, 1)
	go func() { exited <- coord.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Errorf("coordinator drain exited dirty: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Error("coordinator did not drain within its deadline")
	}
}

// buildDrserved compiles cmd/drserved once into a temp dir.
func buildDrserved(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "drserved")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/drserved")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build drserved: %v\n%s", err, out)
	}
	return bin
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// startDaemon launches one drserved process and parses its listen
// address off stderr. Processes left running at test end are killed.
func startDaemon(t *testing.T, bin, name string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", name, err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Signal(syscall.SIGCONT)
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := listenRE.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrc <- m[1]:
				default:
				}
			}
		}
		io.Copy(io.Discard, stderr)
	}()
	select {
	case addr := <-addrc:
		return cmd, addr
	case <-time.After(15 * time.Second):
		t.Fatalf("%s never announced its listen address", name)
		return nil, ""
	}
}
