package fleet

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sessiond"
)

// task is one unit of hedged work: a slice_shard request whose first
// delivered response wins. The same task may be push-dispatched to a
// routed worker, re-dispatched to the rendezvous successor when that
// worker dies, and offered to the steal queue after the straggler
// deadline — shard execution is idempotent, so every duplicate computes
// the same answer and only the first one delivered counts.
type task struct {
	id  string
	req *sessiond.Request

	// respc carries the winning response; deliver's CAS guarantees it is
	// written exactly once.
	respc chan *sessiond.Response
	done  atomic.Bool
	// dispatches counts hand-outs (pushes and steals); >1 means the
	// answer was produced under re-dispatch or hedging, which the
	// coordinator annotates CodeRedispatched.
	dispatches atomic.Int32
	// offered marks the task as placed on the steal queue, so the push
	// path knows a stealer may still answer after it exhausts retries.
	offered atomic.Bool

	// cancels are the losers' teardown hooks (close the in-flight push
	// connection); deliver runs them so the first response cancels every
	// other outstanding attempt.
	mu      sync.Mutex
	cancels []func()
}

func newTask(id string, req *sessiond.Request) *task {
	return &task{id: id, req: req, respc: make(chan *sessiond.Response, 1)}
}

// deliver installs resp as the task's answer if none arrived yet, then
// cancels every other outstanding attempt. It reports whether resp won.
func (t *task) deliver(resp *sessiond.Response) bool {
	if !t.done.CompareAndSwap(false, true) {
		return false
	}
	t.respc <- resp
	t.mu.Lock()
	cancels := t.cancels
	t.cancels = nil
	t.mu.Unlock()
	for _, fn := range cancels {
		fn()
	}
	return true
}

// onCancel registers an attempt's teardown; if the task already
// resolved, fn runs immediately. The returned func deregisters fn (an
// attempt that finished on its own cleans up after itself).
func (t *task) onCancel(fn func()) (remove func()) {
	t.mu.Lock()
	if t.done.Load() {
		t.mu.Unlock()
		fn()
		return func() {}
	}
	t.cancels = append(t.cancels, fn)
	idx := len(t.cancels) - 1
	t.mu.Unlock()
	return func() {
		t.mu.Lock()
		if idx < len(t.cancels) {
			t.cancels[idx] = func() {}
		}
		t.mu.Unlock()
	}
}

// stealQueue is the coordinator's pending-task queue that idle workers
// drain via OpSteal/OpFetch. FIFO; get skips tasks that resolved while
// queued.
type stealQueue struct {
	mu    sync.Mutex
	items []*task
	wake  chan struct{}
}

func newStealQueue() *stealQueue {
	return &stealQueue{wake: make(chan struct{}, 1)}
}

func (q *stealQueue) put(t *task) {
	t.offered.Store(true)
	q.mu.Lock()
	q.items = append(q.items, t)
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// tryGet pops the oldest unresolved task, nil when none is pending.
func (q *stealQueue) tryGet() *task {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) > 0 {
		t := q.items[0]
		q.items = q.items[1:]
		if !t.done.Load() {
			return t
		}
	}
	return nil
}

// get waits up to d for a task; nil on timeout. A bounded wait keeps
// OpSteal a cheap long-poll instead of a busy loop.
func (q *stealQueue) get(d time.Duration) *task {
	deadline := time.NewTimer(d)
	defer deadline.Stop()
	for {
		if t := q.tryGet(); t != nil {
			return t
		}
		select {
		case <-q.wake:
		case <-deadline.C:
			return nil
		}
	}
}

// depth reports the queue length (including resolved stragglers not yet
// skipped) for stats.
func (q *stealQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}
