package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sessiond"
	"repro/internal/supervisor"
)

// Config assembles the coordinator's routing and robustness policy.
type Config struct {
	// HeartbeatInterval is the cadence workers are told to beat at
	// (default 500ms). HeartbeatMiss beats without contact declare a
	// worker dead (default 4), so the detection window is
	// HeartbeatMiss × HeartbeatInterval.
	HeartbeatInterval time.Duration
	HeartbeatMiss     int

	// MaxAttempts bounds how many distinct workers one request is tried
	// on (default 3). Between attempts the coordinator sleeps a capped
	// decorrelated-jitter backoff drawn from [RetryBase, 3×prev] clipped
	// to RetryMax (defaults 10ms / 250ms).
	MaxAttempts int
	RetryBase   time.Duration
	RetryMax    time.Duration

	// HedgeAfter is the straggler deadline: a shard hop unanswered for
	// this long is offered to the steal queue so any idle worker can race
	// the straggler, first response wins (default 1s).
	HedgeAfter time.Duration
	// ShardDeadline backstops a hedged hop: if neither the push path nor
	// a stealer answers within it, the hop fails typed (default
	// 2×RequestTimeout).
	ShardDeadline time.Duration

	// RequestTimeout is the per-forward I/O deadline — a stalled worker
	// becomes a transport error, not a hang (default 60s). DialTimeout
	// bounds connection establishment (default 2s).
	RequestTimeout time.Duration
	DialTimeout    time.Duration

	// ShardWindows is how many checkpoint windows one distributed hop
	// advances (default 4). MinShardWorkers gates distribution: with
	// fewer live workers a slice query is forwarded whole (default 2).
	ShardWindows    int
	MinShardWorkers int

	// StealWait bounds an OpSteal long-poll (default 250ms).
	StealWait time.Duration

	// MaxInflight sheds load fleet-wide: session requests beyond it are
	// rejected with CodeOverload before touching any worker (default
	// 4 × the live fleet's summed capacity, recomputed per request;
	// negative disables shedding).
	MaxInflight int

	// Breaker tunes the per-worker transport circuit breaker.
	Breaker BreakerConfig

	// DrainTimeout bounds Shutdown's graceful phase (default 10s).
	DrainTimeout time.Duration

	// Logf logs coordinator events (nil = silent).
	Logf func(format string, args ...any)

	// Now injects the clock. With the real clock (nil) the coordinator
	// runs its own dead-worker sweeper; with an injected one the test
	// drives Sweep explicitly, so detection timing is deterministic.
	Now func() time.Time
	// Sleep and Rand inject the backoff's timing and jitter (nil =
	// time.Sleep / math/rand).
	Sleep func(time.Duration)
	Rand  func() float64
	// Dial injects the worker transport — the chaos tests' partition
	// hook. nil = sessiond.DialTimeout.
	Dial func(addr string, timeout time.Duration) (*sessiond.Client, error)
}

func (c Config) withDefaults() Config {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 500 * time.Millisecond
	}
	if c.HeartbeatMiss <= 0 {
		c.HeartbeatMiss = 4
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 10 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 250 * time.Millisecond
	}
	if c.HedgeAfter <= 0 {
		c.HedgeAfter = time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.ShardDeadline <= 0 {
		c.ShardDeadline = 2 * c.RequestTimeout
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.ShardWindows <= 0 {
		c.ShardWindows = 4
	}
	if c.MinShardWorkers <= 0 {
		c.MinShardWorkers = 2
	}
	if c.StealWait <= 0 {
		c.StealWait = 250 * time.Millisecond
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	if c.Rand == nil {
		c.Rand = rand.Float64
	}
	if c.Dial == nil {
		c.Dial = func(addr string, timeout time.Duration) (*sessiond.Client, error) {
			return sessiond.DialTimeout(addr, timeout)
		}
	}
	return c
}

// Coordinator fronts the fleet: a line-JSON TCP server that accepts the
// same session requests a drserved worker would, routes them to live
// workers, and answers fleet ops (register/heartbeat/steal/fetch) from
// the workers themselves.
type Coordinator struct {
	cfg   Config
	reg   *Registry
	wbrk  *workerBreaker
	queue *stealQueue
	start time.Time

	received     atomic.Int64
	completed    atomic.Int64
	failed       atomic.Int64
	redispatches atomic.Int64
	sessions     atomic.Int64 // session ops between admission and response
	inflight     atomic.Int64 // requests between line-read and response-written
	draining     atomic.Bool
	taskSeq      atomic.Int64

	// tmu guards the fleet link state: stealable tasks by ID (for
	// OpFetch result matching) and the open per-worker connections (so a
	// dead worker's links can be severed, unblocking forwards instantly).
	tmu   sync.Mutex
	tasks map[string]*task
	links map[string]map[*sessiond.Client]struct{}

	mu       sync.Mutex
	lis      net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	stop     chan struct{}
	stopOnce sync.Once
}

// NewCoordinator builds a coordinator. With a real clock it also runs
// the background dead-worker sweeper once Serve starts.
func NewCoordinator(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	timeout := time.Duration(cfg.HeartbeatMiss) * cfg.HeartbeatInterval
	return &Coordinator{
		cfg:   cfg,
		reg:   NewRegistry(timeout, cfg.Now),
		wbrk:  newWorkerBreaker(cfg.Breaker, cfg.Now),
		queue: newStealQueue(),
		start: time.Now(),
		tasks: make(map[string]*task),
		links: make(map[string]map[*sessiond.Client]struct{}),
		conns: make(map[net.Conn]struct{}),
		stop:  make(chan struct{}),
	}
}

// Registry exposes the worker registry (tests drive registration and
// sweeps through it).
func (co *Coordinator) Registry() *Registry { return co.reg }

// Serve accepts connections on lis until Shutdown closes it.
func (co *Coordinator) Serve(lis net.Listener) error {
	co.mu.Lock()
	co.lis = lis
	co.mu.Unlock()
	if co.cfg.Now == nil {
		co.wg.Add(1)
		go co.sweeper()
	}
	for {
		conn, err := lis.Accept()
		if err != nil {
			if co.draining.Load() {
				return nil
			}
			return err
		}
		co.mu.Lock()
		if co.draining.Load() {
			co.mu.Unlock()
			conn.Close()
			continue
		}
		co.conns[conn] = struct{}{}
		co.wg.Add(1)
		co.mu.Unlock()
		go co.handleConn(conn)
	}
}

// sweeper periodically declares missed-heartbeat workers dead.
func (co *Coordinator) sweeper() {
	defer co.wg.Done()
	tick := time.NewTicker(co.cfg.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-co.stop:
			return
		case <-tick.C:
			co.Sweep()
		}
	}
}

// Sweep declares every missed-heartbeat worker dead and severs its
// in-flight links, so a forward blocked on a dead worker fails over to
// the rendezvous successor after one backoff step instead of waiting
// out its I/O deadline. Exposed so injected-clock tests drive detection
// deterministically. Returns the newly dead workers.
func (co *Coordinator) Sweep() []WorkerInfo {
	dead := co.reg.Sweep()
	for _, w := range dead {
		co.cfg.Logf("fleet: worker %s (%s) missed %d heartbeats, declared dead",
			w.Name, w.Addr, co.cfg.HeartbeatMiss)
		co.severLinks(w.Name)
	}
	return dead
}

func (co *Coordinator) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		co.mu.Lock()
		delete(co.conns, conn)
		co.mu.Unlock()
		co.wg.Done()
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	enc := json.NewEncoder(conn)
	var wmu sync.Mutex // steal long-polls answer concurrently with pipelined requests
	send := func(resp sessiond.Response) {
		wmu.Lock()
		defer wmu.Unlock()
		if err := enc.Encode(&resp); err != nil {
			co.cfg.Logf("fleet: write to %s: %v", conn.RemoteAddr(), err)
		}
	}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		co.inflight.Add(1)
		var req sessiond.Request
		if err := json.Unmarshal(line, &req); err != nil {
			send(sessiond.Response{OK: false, Code: sessiond.CodeBadRequest, Error: "malformed request: " + err.Error()})
		} else {
			co.dispatch(&req, send)
		}
		co.inflight.Add(-1)
	}
}

// dispatch answers one request: fleet ops locally, session ops by
// routing them to workers. Every path terminates in a typed response.
func (co *Coordinator) dispatch(req *sessiond.Request, send func(sessiond.Response)) {
	switch req.Op {
	case sessiond.OpHealth:
		send(co.health(req))
		return
	case sessiond.OpStats:
		send(co.stats(req))
		return
	case sessiond.OpRegister, sessiond.OpHeartbeat, sessiond.OpSteal, sessiond.OpFetch:
		if req.Proto < sessiond.ProtoV2 {
			send(sessiond.Response{ID: req.ID, OK: false, Code: sessiond.CodeBadRequest,
				Error: fmt.Sprintf("op %q requires proto>=%d", req.Op, sessiond.ProtoV2)})
			return
		}
		send(co.fleetOp(req))
		return
	case sessiond.OpStorePut, sessiond.OpStoreFetch, sessiond.OpStoreStat, sessiond.OpStoreLocate:
		if req.Proto < sessiond.ProtoV2 {
			send(sessiond.Response{ID: req.ID, OK: false, Code: sessiond.CodeBadRequest,
				Error: fmt.Sprintf("op %q requires proto>=%d", req.Op, sessiond.ProtoV2)})
			return
		}
		co.received.Add(1)
		resp := co.storeOp(req)
		if resp.OK {
			co.completed.Add(1)
		} else {
			co.failed.Add(1)
		}
		send(resp)
		return
	}

	// A session op. Shed before routing: drain refuses outright, and the
	// fleet-wide in-flight cap rejects what the workers' own admission
	// queues would only make wait.
	co.received.Add(1)
	if co.draining.Load() {
		co.failed.Add(1)
		send(sessiond.Response{ID: req.ID, OK: false, Code: sessiond.CodeDraining,
			Error: "coordinator is draining"})
		return
	}
	if limit := co.inflightLimit(); limit >= 0 && co.sessions.Load() >= int64(limit) {
		co.failed.Add(1)
		send(sessiond.Response{ID: req.ID, OK: false, Code: sessiond.CodeOverload,
			Error: fmt.Sprintf("fleet saturated: %d sessions in flight against capacity %d", co.sessions.Load(), co.reg.Capacity())})
		return
	}
	co.sessions.Add(1)
	resp := co.route(req)
	co.sessions.Add(-1)
	if resp.OK {
		co.completed.Add(1)
	} else {
		co.failed.Add(1)
	}
	send(resp)
}

// inflightLimit resolves the fleet-wide shedding threshold; -1 disables.
func (co *Coordinator) inflightLimit() int {
	if co.cfg.MaxInflight < 0 {
		return -1
	}
	if co.cfg.MaxInflight > 0 {
		return co.cfg.MaxInflight
	}
	total := co.reg.Capacity()
	if total == 0 {
		// No live workers: let route answer CodeNoWorkers, which is more
		// actionable than overload.
		return -1
	}
	return 4 * total
}

// fleetOp answers a worker-originated op.
func (co *Coordinator) fleetOp(req *sessiond.Request) sessiond.Response {
	switch req.Op {
	case sessiond.OpRegister:
		if req.Worker == "" || req.Addr == "" {
			return sessiond.Response{ID: req.ID, OK: false, Code: sessiond.CodeBadRequest,
				Error: "register needs fleet_worker and fleet_addr"}
		}
		co.reg.Register(WorkerInfo{Name: req.Worker, Addr: req.Addr, Capacity: req.Capacity, Load: req.Load})
		co.wbrk.success(req.Worker) // a fresh registration resets its transport history
		co.cfg.Logf("fleet: worker %s registered at %s (capacity %d)", req.Worker, req.Addr, req.Capacity)
		return sessiond.Response{ID: req.ID, OK: true, Result: encode(sessiond.RegisterResult{
			Worker:      req.Worker,
			Proto:       sessiond.ProtoCurrent,
			HeartbeatMS: co.cfg.HeartbeatInterval.Milliseconds(),
		})}
	case sessiond.OpHeartbeat:
		known := co.reg.Heartbeat(req.Worker, req.Load)
		return sessiond.Response{ID: req.ID, OK: true, Result: encode(sessiond.HeartbeatResult{Known: known})}
	case sessiond.OpSteal:
		t := co.queue.get(co.cfg.StealWait)
		return sessiond.Response{ID: req.ID, OK: true, Result: encode(co.handOut(t))}
	case sessiond.OpFetch:
		co.resolveFetch(req)
		return sessiond.Response{ID: req.ID, OK: true, Result: encode(co.handOut(co.queue.tryGet()))}
	}
	return sessiond.Response{ID: req.ID, OK: false, Code: sessiond.CodeBadRequest, Error: "unknown fleet op " + req.Op}
}

// handOut wraps a task for the wire and counts the dispatch.
func (co *Coordinator) handOut(t *task) sessiond.TaskResult {
	if t == nil {
		return sessiond.TaskResult{}
	}
	t.dispatches.Add(1)
	return sessiond.TaskResult{Task: &sessiond.ShardTask{ID: t.id, Req: t.req}}
}

// resolveFetch matches a stolen task's result back to its waiter.
// Unknown task IDs (the push path already won, or the query moved on)
// are discarded — the worker's compute was the hedge's cost.
func (co *Coordinator) resolveFetch(req *sessiond.Request) {
	co.tmu.Lock()
	t := co.tasks[req.TaskID]
	co.tmu.Unlock()
	if t == nil {
		return
	}
	if req.TaskErr != "" {
		t.deliver(&sessiond.Response{OK: false, Code: sessiond.CodeInternal, Error: req.TaskErr})
		return
	}
	var resp sessiond.Response
	if err := json.Unmarshal(req.TaskState, &resp); err != nil {
		co.cfg.Logf("fleet: fetch for task %s carried malformed response: %v", req.TaskID, err)
		return
	}
	t.deliver(&resp)
}

// route answers one session request. Slice queries fan out as
// distributed shard chains when enough workers are live; everything
// else (and small fleets) forwards whole to the rendezvous owner.
func (co *Coordinator) route(req *sessiond.Request) sessiond.Response {
	key := sessiond.RouteKey(req)
	if req.Op == sessiond.OpSlice && (req.Pinball != "" || req.Digest != "") &&
		len(co.reg.Alive()) >= co.cfg.MinShardWorkers {
		return co.distributedSlice(req, key)
	}
	return co.forward(req, key)
}

// forward sends req whole to the rendezvous owner of key, failing over
// to the next-ranked live worker with capped decorrelated-jitter
// backoff on transport errors. Typed failures pass through unchanged —
// they are the session's own answer, not the fleet's. A success that
// needed failover is annotated CodeRedispatched (unless the session
// already carries a stronger annotation like salvaged/degraded).
func (co *Coordinator) forward(req *sessiond.Request, key string) sessiond.Response {
	tried := make(map[string]bool)
	var backoff time.Duration
	var lastErr error
	redispatched := false
	for attempt := 0; attempt < co.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			backoff = supervisor.DecorrelatedJitter(backoff, co.cfg.RetryBase, co.cfg.RetryMax, co.cfg.Rand)
			co.cfg.Sleep(backoff)
			redispatched = true
		}
		w, ok := co.pick(key, tried)
		if !ok {
			break
		}
		resp, err := co.send(w, req, nil)
		if err != nil {
			co.cfg.Logf("fleet: forward %s to %s failed: %v", req.Op, w.Name, err)
			tried[w.Name] = true
			lastErr = err
			continue
		}
		if redispatched {
			co.redispatches.Add(1)
			if resp.OK && resp.Code == "" {
				resp.Code = sessiond.CodeRedispatched
			}
		}
		resp.ID = req.ID
		return *resp
	}
	msg := "no live worker to route to"
	if lastErr != nil {
		msg = fmt.Sprintf("no worker answered after %d attempts: %v", co.cfg.MaxAttempts, lastErr)
	}
	return sessiond.Response{ID: req.ID, OK: false, Code: sessiond.CodeNoWorkers, Error: msg}
}

// pick routes key to its best live worker, skipping already-tried
// workers and open circuits.
func (co *Coordinator) pick(key string, tried map[string]bool) (WorkerInfo, bool) {
	return co.reg.Route(key, func(name string) bool {
		return tried[name] || co.wbrk.open(name)
	})
}

// send performs one forward against one worker with a fresh connection
// and a per-request I/O deadline, charging transport failures (and only
// those) to the worker's circuit. The link is registered under the
// worker's name so a dead-worker sweep can sever it, and under t (when
// hedging) so the first response cancels it.
func (co *Coordinator) send(w WorkerInfo, req *sessiond.Request, t *task) (*sessiond.Response, error) {
	c, err := co.cfg.Dial(w.Addr, co.cfg.DialTimeout)
	if err != nil {
		co.wbrk.failure(w.Name)
		return nil, err
	}
	co.trackLink(w.Name, c)
	defer co.untrackLink(w.Name, c)
	defer c.Close()
	var unhook func()
	if t != nil {
		unhook = t.onCancel(func() { c.Close() })
		defer unhook()
	}
	c.SetDeadline(time.Now().Add(co.cfg.RequestTimeout))
	resp, err := c.Do(req)
	if err != nil {
		co.wbrk.failure(w.Name)
		return nil, err
	}
	co.wbrk.success(w.Name)
	return resp, nil
}

func (co *Coordinator) trackLink(worker string, c *sessiond.Client) {
	co.tmu.Lock()
	set := co.links[worker]
	if set == nil {
		set = make(map[*sessiond.Client]struct{})
		co.links[worker] = set
	}
	set[c] = struct{}{}
	co.tmu.Unlock()
}

func (co *Coordinator) untrackLink(worker string, c *sessiond.Client) {
	co.tmu.Lock()
	if set := co.links[worker]; set != nil {
		delete(set, c)
		if len(set) == 0 {
			delete(co.links, worker)
		}
	}
	co.tmu.Unlock()
}

// severLinks closes every open connection to a dead worker; blocked
// forwards return transport errors immediately and fail over.
func (co *Coordinator) severLinks(worker string) {
	co.tmu.Lock()
	set := co.links[worker]
	delete(co.links, worker)
	co.tmu.Unlock()
	for c := range set {
		c.Close()
	}
}

// maxShardHops guards a shard chain against a state that stops making
// progress (it cannot happen — bounds strictly descend — but a wire-
// level bug must not become an infinite loop).
const maxShardHops = 1 << 20

// distributedSlice executes one slice query as a chain of slice_shard
// hops, each hedged across the fleet. The chain is sequential — hop N+1
// resumes from hop N's state — but different queries' chains interleave
// freely across workers, and within one hop the straggler hedge races
// two workers. The final hop's summary is bit-identity-checked against
// single-node runs via its digest.
func (co *Coordinator) distributedSlice(req *sessiond.Request, key string) sessiond.Response {
	var state json.RawMessage
	redispatched := false
	for hop := 0; hop < maxShardHops; hop++ {
		sreq := *req
		sreq.ID = ""
		sreq.Op = sessiond.OpSliceShard
		sreq.Proto = sessiond.ProtoCurrent
		sreq.State = state
		sreq.ShardWindows = co.cfg.ShardWindows
		resp, hopRedispatched := co.runShard(&sreq, key)
		redispatched = redispatched || hopRedispatched
		if !resp.OK {
			resp.ID = req.ID
			return resp
		}
		var sr sessiond.ShardResult
		if err := json.Unmarshal(resp.Result, &sr); err != nil {
			return sessiond.Response{ID: req.ID, OK: false, Code: sessiond.CodeInternal,
				Error: "malformed shard result: " + err.Error()}
		}
		if sr.Done {
			code := resp.Code
			if redispatched {
				co.redispatches.Add(1)
				if code == "" {
					code = sessiond.CodeRedispatched
				}
			}
			return sessiond.Response{ID: req.ID, OK: true, Code: code, Report: resp.Report,
				Result: encode(sessiond.SliceResult{
					Members:        sr.Members,
					TraceLen:       sr.TraceLen,
					Deps:           int(sr.Deps),
					PrunedBypasses: int(sr.Pruned),
					Digest:         sr.Digest,
					Prov:           sr.Prov,
				})}
		}
		state = sr.State
	}
	return sessiond.Response{ID: req.ID, OK: false, Code: sessiond.CodeInternal,
		Error: "shard chain exceeded hop limit"}
}

// runShard resolves one shard hop: push-dispatch to the rendezvous
// owner, offer to the steal queue if the push has not answered by the
// straggler deadline, first response wins. It reports whether the
// answer needed more than one dispatch.
func (co *Coordinator) runShard(sreq *sessiond.Request, key string) (sessiond.Response, bool) {
	t := newTask(strconv.FormatInt(co.taskSeq.Add(1), 10), sreq)
	co.tmu.Lock()
	co.tasks[t.id] = t
	co.tmu.Unlock()
	defer func() {
		co.tmu.Lock()
		delete(co.tasks, t.id)
		co.tmu.Unlock()
	}()

	go co.pushShard(t, key)

	hedge := time.NewTimer(co.cfg.HedgeAfter)
	defer hedge.Stop()
	select {
	case resp := <-t.respc:
		return *resp, t.dispatches.Load() > 1
	case <-hedge.C:
	}

	// Straggler: put the hop up for stealing so any idle worker can race
	// the push path. Execution is idempotent, so the duplicate is safe;
	// whichever answer lands first wins and cancels the other.
	co.queue.put(t)
	backstop := time.NewTimer(co.cfg.ShardDeadline)
	defer backstop.Stop()
	select {
	case resp := <-t.respc:
		return *resp, t.dispatches.Load() > 1
	case <-backstop.C:
		t.deliver(&sessiond.Response{OK: false, Code: sessiond.CodeTimeout,
			Error: "shard unanswered past the hedge backstop"})
		return *<-t.respc, t.dispatches.Load() > 1
	}
}

// pushShard is a hop's push path: the forward loop, but delivering into
// the task so a stolen duplicate can win instead. If every push attempt
// fails on transport and the task was never offered for stealing, the
// push delivers the typed failure itself — nobody else will.
func (co *Coordinator) pushShard(t *task, key string) {
	tried := make(map[string]bool)
	var backoff time.Duration
	var lastErr error
	for attempt := 0; attempt < co.cfg.MaxAttempts && !t.done.Load(); attempt++ {
		if attempt > 0 {
			backoff = supervisor.DecorrelatedJitter(backoff, co.cfg.RetryBase, co.cfg.RetryMax, co.cfg.Rand)
			co.cfg.Sleep(backoff)
		}
		w, ok := co.pick(key, tried)
		if !ok {
			break
		}
		t.dispatches.Add(1)
		resp, err := co.send(w, t.req, t)
		if err != nil {
			if !t.done.Load() {
				co.cfg.Logf("fleet: shard %s on %s failed: %v", t.id, w.Name, err)
			}
			tried[w.Name] = true
			lastErr = err
			continue
		}
		t.deliver(resp)
		return
	}
	if t.offered.Load() {
		return // a stealer may still answer; the backstop bounds the wait
	}
	msg := "no live worker to route to"
	if lastErr != nil {
		msg = fmt.Sprintf("no worker answered after %d attempts: %v", co.cfg.MaxAttempts, lastErr)
	}
	t.deliver(&sessiond.Response{OK: false, Code: sessiond.CodeNoWorkers, Error: msg})
}

func (co *Coordinator) health(req *sessiond.Request) sessiond.Response {
	draining := co.draining.Load()
	status := "ok"
	if draining {
		status = "draining"
	}
	return sessiond.Response{ID: req.ID, OK: true, Result: encode(sessiond.HealthResult{
		Live:     true,
		Ready:    !draining && len(co.reg.Alive()) > 0,
		Status:   status,
		Active:   len(co.reg.Alive()),
		Queued:   co.queue.depth(),
		UptimeMS: time.Since(co.start).Milliseconds(),
	})}
}

// stats reuses the sessiond stats shape with fleet meanings: Active is
// live workers, Queued the steal-queue depth, BreakersOpen the open
// per-worker circuits, Rejected the re-dispatch count.
func (co *Coordinator) stats(req *sessiond.Request) sessiond.Response {
	return sessiond.Response{ID: req.ID, OK: true, Result: encode(sessiond.StatsResult{
		Received:     co.received.Load(),
		Accepted:     co.received.Load() - co.failed.Load(),
		Rejected:     co.redispatches.Load(),
		Completed:    co.completed.Load(),
		Failed:       co.failed.Load(),
		Active:       len(co.reg.Alive()),
		Queued:       co.queue.depth(),
		BreakersOpen: co.wbrk.openCount(),
	})}
}

// Shutdown drains the coordinator: stop admitting sessions (new ones
// get CodeDraining), wait for every in-flight response to flush, then
// close the listener and connections. In-flight routed sessions finish
// and deliver — a drain loses no accepted work.
func (co *Coordinator) Shutdown(deadline time.Duration) error {
	co.draining.Store(true)
	co.stopOnce.Do(func() { close(co.stop) })
	co.mu.Lock()
	if co.lis != nil {
		co.lis.Close()
	}
	co.mu.Unlock()

	expire := time.Now().Add(deadline)
	for co.inflight.Load() > 0 {
		if time.Now().After(expire) {
			co.cfg.Logf("fleet: drain deadline expired with %d requests in flight", co.inflight.Load())
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	co.mu.Lock()
	for c := range co.conns {
		c.Close()
	}
	co.mu.Unlock()
	done := make(chan struct{})
	go func() { co.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-time.After(deadline):
		return fmt.Errorf("fleet: connections did not close within drain deadline")
	}
}

// encode marshals a payload (mirror of sessiond's helper).
func encode(v any) json.RawMessage {
	data, err := json.Marshal(v)
	if err != nil {
		return json.RawMessage(`{}`)
	}
	return data
}
