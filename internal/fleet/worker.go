package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/sessiond"
)

// AgentConfig wires a worker's sessiond.Server into the fleet.
type AgentConfig struct {
	// Coordinator is the coordinator's address.
	Coordinator string
	// Name is the worker's fleet-unique name; Addr the address its
	// sessiond listener serves on (what the coordinator dials back).
	Name string
	Addr string
	// Capacity is the admission capacity advertised at registration.
	Capacity int

	// StealIdle is how long the steal loop rests after an empty poll
	// (default 100ms; the coordinator's own long-poll does most of the
	// waiting). RetryEvery paces reconnects to an unreachable
	// coordinator (default 500ms). DialTimeout bounds each dial
	// (default 2s).
	StealIdle   time.Duration
	RetryEvery  time.Duration
	DialTimeout time.Duration

	// Logf logs agent events (nil = silent).
	Logf func(format string, args ...any)
	// BeatHook, when set, gates each heartbeat: returning false drops
	// it — the chaos tests' missed-heartbeat fault. nil sends every
	// beat.
	BeatHook func() bool
	// Dial injects the coordinator transport (nil = sessiond.DialTimeout).
	Dial func(addr string, timeout time.Duration) (*sessiond.Client, error)
}

func (c AgentConfig) withDefaults() AgentConfig {
	if c.StealIdle <= 0 {
		c.StealIdle = 100 * time.Millisecond
	}
	if c.RetryEvery <= 0 {
		c.RetryEvery = 500 * time.Millisecond
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Dial == nil {
		c.Dial = func(addr string, timeout time.Duration) (*sessiond.Client, error) {
			return sessiond.DialTimeout(addr, timeout)
		}
	}
	return c
}

// Agent joins a sessiond.Server to a coordinator: it registers,
// heartbeats liveness and load, and pulls stealable shard tasks that it
// executes in-process through Server.Execute — so stolen work counts
// against the worker's own admission, quotas, breakers and drain
// accounting exactly like connection-delivered work.
type Agent struct {
	srv *sessiond.Server
	cfg AgentConfig
}

// NewAgent builds an agent for srv.
func NewAgent(srv *sessiond.Server, cfg AgentConfig) *Agent {
	return &Agent{srv: srv, cfg: cfg.withDefaults()}
}

// Run registers with the coordinator (retrying until it is reachable or
// ctx ends), then drives the heartbeat and steal loops until ctx ends.
func (a *Agent) Run(ctx context.Context) error {
	interval, err := a.register(ctx)
	if err != nil {
		return err
	}
	go a.heartbeatLoop(ctx, interval)
	go a.stealLoop(ctx)
	<-ctx.Done()
	return nil
}

// register announces the worker and returns the heartbeat cadence the
// coordinator asked for.
func (a *Agent) register(ctx context.Context) (time.Duration, error) {
	for {
		interval, err := a.registerOnce()
		if err == nil {
			a.cfg.Logf("fleet: %s registered with %s, heartbeat %v", a.cfg.Name, a.cfg.Coordinator, interval)
			return interval, nil
		}
		a.cfg.Logf("fleet: %s register: %v", a.cfg.Name, err)
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(a.cfg.RetryEvery):
		}
	}
}

func (a *Agent) registerOnce() (time.Duration, error) {
	c, err := a.cfg.Dial(a.cfg.Coordinator, a.cfg.DialTimeout)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	resp, err := c.Do(&sessiond.Request{
		Op: sessiond.OpRegister, Proto: sessiond.ProtoCurrent,
		Worker: a.cfg.Name, Addr: a.cfg.Addr, Capacity: a.cfg.Capacity,
	})
	if err != nil {
		return 0, err
	}
	if !resp.OK {
		return 0, fmt.Errorf("register rejected: %s: %s", resp.Code, resp.Error)
	}
	var rr sessiond.RegisterResult
	if err := json.Unmarshal(resp.Result, &rr); err != nil {
		return 0, fmt.Errorf("malformed register result: %w", err)
	}
	if rr.HeartbeatMS <= 0 {
		return 0, fmt.Errorf("coordinator asked for no heartbeat")
	}
	return time.Duration(rr.HeartbeatMS) * time.Millisecond, nil
}

// heartbeatLoop beats liveness and load on one persistent connection,
// reconnecting as needed. A Known=false answer means the coordinator
// forgot us (it declared us dead, or restarted) — re-register before
// the next beat so routing resumes.
func (a *Agent) heartbeatLoop(ctx context.Context, interval time.Duration) {
	var c *sessiond.Client
	defer func() {
		if c != nil {
			c.Close()
		}
	}()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		if a.cfg.BeatHook != nil && !a.cfg.BeatHook() {
			continue
		}
		if c == nil {
			var err error
			if c, err = a.cfg.Dial(a.cfg.Coordinator, a.cfg.DialTimeout); err != nil {
				a.cfg.Logf("fleet: %s heartbeat dial: %v", a.cfg.Name, err)
				continue
			}
		}
		running, queued := a.srv.Load()
		resp, err := c.Do(&sessiond.Request{
			Op: sessiond.OpHeartbeat, Proto: sessiond.ProtoCurrent,
			Worker: a.cfg.Name, Load: running + queued,
		})
		if err != nil {
			c.Close()
			c = nil
			continue
		}
		var hb sessiond.HeartbeatResult
		if resp.OK && json.Unmarshal(resp.Result, &hb) == nil && !hb.Known {
			a.cfg.Logf("fleet: %s unknown to coordinator, re-registering", a.cfg.Name)
			if _, err := a.registerOnce(); err != nil {
				a.cfg.Logf("fleet: %s re-register: %v", a.cfg.Name, err)
			}
		}
	}
}

// stealLoop pulls shard tasks and executes them locally, submitting
// each result and fetching the next in one round trip. Steals ride
// their own connection so a long-polled steal never delays a heartbeat.
func (a *Agent) stealLoop(ctx context.Context) {
	var c *sessiond.Client
	defer func() {
		if c != nil {
			c.Close()
		}
	}()
	idle := func() bool {
		select {
		case <-ctx.Done():
			return false
		case <-time.After(a.cfg.StealIdle):
			return true
		}
	}
	for ctx.Err() == nil {
		if c == nil {
			var err error
			if c, err = a.cfg.Dial(a.cfg.Coordinator, a.cfg.DialTimeout); err != nil {
				if !idle() {
					return
				}
				continue
			}
		}
		req := &sessiond.Request{Op: sessiond.OpSteal, Proto: sessiond.ProtoCurrent, Worker: a.cfg.Name}
		for {
			resp, err := c.Do(req)
			if err != nil {
				c.Close()
				c = nil
				break
			}
			var tr sessiond.TaskResult
			if !resp.OK || json.Unmarshal(resp.Result, &tr) != nil || tr.Task == nil {
				if !idle() {
					return
				}
				break
			}
			out := a.srv.Execute(tr.Task.Req, "fleet:"+a.cfg.Name)
			req = &sessiond.Request{
				Op: sessiond.OpFetch, Proto: sessiond.ProtoCurrent,
				Worker: a.cfg.Name, TaskID: tr.Task.ID, TaskState: encode(&out),
			}
		}
	}
}
