// Package fleet distributes drserved sessions across a
// coordinator/worker fleet speaking the sessiond line-JSON protocol.
//
// The topology is a single coordinator fronting any number of workers.
// Each worker is an ordinary sessiond.Server plus an Agent that
// registers with the coordinator, advertises its capacity, heartbeats
// its liveness and load, and pulls stealable shard tasks. The
// coordinator is itself a line-JSON TCP server — to a client it looks
// exactly like a drserved instance — that routes session requests to
// workers by rendezvous hashing on the pinball's content identity
// (cache-hot routing: the same pinball always lands on the same
// worker's engine LRU), sheds load fleet-wide, and executes slice
// queries as distributed slice_shard chains with work stealing and
// hedged straggler re-dispatch.
//
// Failure domains are isolated per worker: a missed-heartbeat sweep
// declares a worker dead, severs its in-flight links (so blocked
// forwards fail immediately instead of waiting out their I/O deadline)
// and re-dispatches the work to the rendezvous successor after one
// capped decorrelated-jitter backoff step; per-worker circuit breakers
// — counting only transport failures, never a pinball's own typed
// failures — stop the coordinator from burning retries against a host
// that stopped answering; and hedged shard requests race a straggling
// worker against a stolen duplicate, first response wins, which is safe
// because shard execution is a pure state→state function (see
// internal/slice's shard soundness note).
package fleet

import (
	"hash/fnv"
	"sort"
	"sync"
	"time"
)

// WorkerInfo is one worker's registration: its fleet-unique name, the
// address its sessiond listener serves on, its admission capacity, and
// the load it reported on its last heartbeat.
type WorkerInfo struct {
	Name     string
	Addr     string
	Capacity int
	Load     int
}

type workerState struct {
	info     WorkerInfo
	lastBeat time.Time
}

// Registry tracks worker liveness for the coordinator. A worker is
// alive from registration until it misses heartbeats for longer than
// the timeout; Sweep then removes it and reports it dead. The clock is
// injected so dead-worker detection is deterministic under test.
type Registry struct {
	timeout time.Duration
	now     func() time.Time

	mu      sync.Mutex
	workers map[string]*workerState
}

// NewRegistry builds a registry declaring workers dead after timeout
// without a heartbeat. now is the clock (nil = time.Now).
func NewRegistry(timeout time.Duration, now func() time.Time) *Registry {
	if now == nil {
		now = time.Now
	}
	if timeout <= 0 {
		timeout = 3 * time.Second
	}
	return &Registry{timeout: timeout, now: now, workers: make(map[string]*workerState)}
}

// Register adds (or refreshes) a worker. Re-registering under the same
// name replaces the previous entry — the recovery path for a worker
// that was declared dead and came back.
func (r *Registry) Register(info WorkerInfo) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.workers[info.Name] = &workerState{info: info, lastBeat: r.now()}
}

// Heartbeat refreshes a worker's liveness and load. It reports false
// for unknown workers — declared dead, or registered with a restarted
// coordinator — which tells the worker to re-register.
func (r *Registry) Heartbeat(name string, load int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[name]
	if !ok {
		return false
	}
	w.lastBeat = r.now()
	w.info.Load = load
	return true
}

// Sweep removes every worker whose last heartbeat is older than the
// timeout and returns them — the coordinator re-dispatches their
// in-flight work.
func (r *Registry) Sweep() []WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	cutoff := r.now().Add(-r.timeout)
	var dead []WorkerInfo
	for name, w := range r.workers {
		if w.lastBeat.Before(cutoff) {
			dead = append(dead, w.info)
			delete(r.workers, name)
		}
	}
	sort.Slice(dead, func(i, j int) bool { return dead[i].Name < dead[j].Name })
	return dead
}

// Alive lists the live workers, sorted by name.
func (r *Registry) Alive() []WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WorkerInfo, 0, len(r.workers))
	for _, w := range r.workers {
		out = append(out, w.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Capacity sums the live workers' advertised capacities; a worker that
// advertised none counts as 1.
func (r *Registry) Capacity() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := 0
	for _, w := range r.workers {
		c := w.info.Capacity
		if c <= 0 {
			c = 1
		}
		total += c
	}
	return total
}

// Route picks the live worker owning key by rendezvous (highest-random-
// weight) hashing: every worker scores fnv64a(name, key) and the
// highest score wins. Removing a worker remaps only the keys it owned —
// every other key keeps its worker and its warm caches — and adding one
// steals only the keys it now wins. exclude skips workers already tried
// (or with an open circuit); nil excludes none.
func (r *Registry) Route(key string, exclude func(name string) bool) (WorkerInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var best *workerState
	var bestScore uint64
	for _, w := range r.workers {
		if exclude != nil && exclude(w.info.Name) {
			continue
		}
		score := rendezvousScore(w.info.Name, key)
		if best == nil || score > bestScore || (score == bestScore && w.info.Name < best.info.Name) {
			best, bestScore = w, score
		}
	}
	if best == nil {
		return WorkerInfo{}, false
	}
	return best.info, true
}

// Ranked lists the live workers by descending rendezvous score for key
// — the fleet's replica placement order. Ranked(key, nil)[0] is Route's
// answer (the owner); the successors are where store puts replicate and
// where fetches fail over when the owner is dead. exclude skips workers
// (nil = none).
func (r *Registry) Ranked(key string, exclude func(name string) bool) []WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	type scored struct {
		info  WorkerInfo
		score uint64
	}
	ranked := make([]scored, 0, len(r.workers))
	for _, w := range r.workers {
		if exclude != nil && exclude(w.info.Name) {
			continue
		}
		ranked = append(ranked, scored{w.info, rendezvousScore(w.info.Name, key)})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].info.Name < ranked[j].info.Name
	})
	out := make([]WorkerInfo, len(ranked))
	for i, s := range ranked {
		out[i] = s.info
	}
	return out
}

func rendezvousScore(worker, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(worker))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return h.Sum64()
}
