package fleet

import (
	"sync"
	"time"
)

// BreakerConfig tunes the per-worker transport circuit breaker.
type BreakerConfig struct {
	// K is the consecutive transport-failure threshold that opens a
	// worker's circuit (default 3; negative disables the breaker).
	K int
	// Cooldown is how long an opened circuit keeps the worker out of
	// routing before a trial request is allowed (default 5s).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.K == 0 {
		c.K = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	return c
}

type workerBreakerEntry struct {
	consecutive int
	openUntil   time.Time
}

// workerBreaker is the per-worker circuit breaker, layered over
// sessiond's per-pinball breaker: it counts only transport failures
// (dial refused, connection severed, I/O deadline) — a typed session
// failure is the pinball's fault, not the worker's, and charging it
// here would let one corrupt pinball take a healthy worker out of
// routing for everyone.
type workerBreaker struct {
	cfg BreakerConfig
	now func() time.Time

	mu      sync.Mutex
	entries map[string]*workerBreakerEntry
}

func newWorkerBreaker(cfg BreakerConfig, now func() time.Time) *workerBreaker {
	if now == nil {
		now = time.Now
	}
	return &workerBreaker{cfg: cfg.withDefaults(), now: now, entries: make(map[string]*workerBreakerEntry)}
}

// open reports whether name's circuit is currently open (the router
// must skip it).
func (b *workerBreaker) open(name string) bool {
	if b.cfg.K < 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[name]
	return ok && b.now().Before(e.openUntil)
}

// failure records one transport failure; the K-th consecutive one opens
// the circuit for the cooldown.
func (b *workerBreaker) failure(name string) {
	if b.cfg.K < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[name]
	if !ok {
		e = &workerBreakerEntry{}
		b.entries[name] = e
	}
	e.consecutive++
	if e.consecutive >= b.cfg.K {
		e.openUntil = b.now().Add(b.cfg.Cooldown)
	}
}

// success closes name's circuit.
func (b *workerBreaker) success(name string) {
	b.mu.Lock()
	delete(b.entries, name)
	b.mu.Unlock()
}

// openCount reports how many worker circuits are currently open.
func (b *workerBreaker) openCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	n := 0
	for _, e := range b.entries {
		if now.Before(e.openUntil) {
			n++
		}
	}
	return n
}
