package fleet

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/pinplay"
	"repro/internal/sessiond"
	"repro/internal/supervisor"

	drdebug "repro"
)

// fakeClock is the injected time source for deterministic liveness
// tests: heartbeat timeouts elapse only when the test advances it.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// fakeWorker is a minimal line-JSON server standing in for a worker:
// every request is answered by handler — or held forever when handler
// returns nil, the stand-in for a worker that died holding a request.
func fakeWorker(t *testing.T, handler func(req *sessiond.Request) *sessiond.Response) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	t.Cleanup(func() { close(done); lis.Close() })
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				sc := bufio.NewScanner(conn)
				sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
				enc := json.NewEncoder(conn)
				for sc.Scan() {
					var req sessiond.Request
					if json.Unmarshal(sc.Bytes(), &req) != nil {
						return
					}
					resp := handler(&req)
					if resp == nil {
						<-done // hold the request forever
						return
					}
					if enc.Encode(resp) != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return lis.Addr().String()
}

// startCoordinator serves a coordinator on loopback and tears it down
// with the test.
func startCoordinator(t *testing.T, cfg Config) (*Coordinator, string) {
	t.Helper()
	co := NewCoordinator(cfg)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go co.Serve(lis)
	t.Cleanup(func() { co.Shutdown(2 * time.Second) })
	return co, lis.Addr().String()
}

// probeKeyFor writes probe pinball files until the registry routes one
// to the wanted worker, returning its path. Rendezvous hashing is
// deterministic, so a handful of probes always suffices.
func probeKeyFor(t *testing.T, reg *Registry, want string) string {
	t.Helper()
	dir := t.TempDir()
	for i := 0; i < 256; i++ {
		path := filepath.Join(dir, fmt.Sprintf("probe%d.pinball", i))
		if err := os.WriteFile(path, []byte(fmt.Sprintf("probe content %d", i)), 0o644); err != nil {
			t.Fatal(err)
		}
		key := sessiond.RouteKey(&sessiond.Request{Pinball: path})
		if w, ok := reg.Route(key, nil); ok && w.Name == want {
			return path
		}
	}
	t.Fatalf("no probe key routed to %s", want)
	return ""
}

func TestRendezvousRouting(t *testing.T) {
	reg := NewRegistry(time.Minute, nil)
	for _, name := range []string{"w1", "w2", "w3"} {
		reg.Register(WorkerInfo{Name: name, Addr: name + ":0", Capacity: 4})
	}
	owner := make(map[string]string)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("pinball-%d", i)
		w, ok := reg.Route(key, nil)
		if !ok {
			t.Fatal("no route")
		}
		owner[key] = w.Name
		// Stable: the same key routes to the same worker every time.
		if again, _ := reg.Route(key, nil); again.Name != w.Name {
			t.Fatalf("key %s flapped %s -> %s", key, w.Name, again.Name)
		}
	}
	// Removing a worker remaps only its keys; every other key keeps its
	// owner (and its warm engine cache).
	reg2 := NewRegistry(time.Minute, nil)
	reg2.Register(WorkerInfo{Name: "w1", Addr: "w1:0"})
	reg2.Register(WorkerInfo{Name: "w3", Addr: "w3:0"})
	moved := 0
	for key, prev := range owner {
		w, ok := reg2.Route(key, nil)
		if !ok {
			t.Fatal("no route")
		}
		if prev == "w2" {
			moved++
			continue
		}
		if w.Name != prev {
			t.Fatalf("key %s owned by %s moved to %s though its worker is alive", key, prev, w.Name)
		}
	}
	if moved == 0 {
		t.Fatal("w2 owned no keys out of 200 — suspicious hash")
	}
}

func TestRegistryLivenessInjectedClock(t *testing.T) {
	clk := newFakeClock()
	reg := NewRegistry(300*time.Millisecond, clk.Now)
	reg.Register(WorkerInfo{Name: "a", Addr: "a:0"})
	reg.Register(WorkerInfo{Name: "b", Addr: "b:0"})

	clk.Advance(200 * time.Millisecond)
	if !reg.Heartbeat("a", 1) {
		t.Fatal("live worker's heartbeat refused")
	}
	if dead := reg.Sweep(); len(dead) != 0 {
		t.Fatalf("premature deaths: %v", dead)
	}

	// b last beat at t0; past the timeout only b dies.
	clk.Advance(200 * time.Millisecond)
	dead := reg.Sweep()
	if len(dead) != 1 || dead[0].Name != "b" {
		t.Fatalf("sweep: %v", dead)
	}
	if reg.Heartbeat("b", 0) {
		t.Fatal("dead worker's heartbeat accepted without re-register")
	}
	if alive := reg.Alive(); len(alive) != 1 || alive[0].Name != "a" {
		t.Fatalf("alive: %v", alive)
	}
}

func TestWorkerBreakerTransportOnly(t *testing.T) {
	clk := newFakeClock()
	b := newWorkerBreaker(BreakerConfig{K: 2, Cooldown: time.Second}, clk.Now)
	b.failure("w")
	if b.open("w") {
		t.Fatal("opened below threshold")
	}
	b.failure("w")
	if !b.open("w") || b.openCount() != 1 {
		t.Fatal("did not open at threshold")
	}
	clk.Advance(1100 * time.Millisecond)
	if b.open("w") {
		t.Fatal("cooldown did not expire")
	}
	b.failure("w") // failed trial re-opens immediately
	if !b.open("w") {
		t.Fatal("failed trial did not re-open")
	}
	b.success("w")
	if b.open("w") {
		t.Fatal("success did not close the circuit")
	}
}

// TestDeadWorkerRedispatch is the tentpole's determinism criterion: a
// worker dies holding an in-flight request; once the injected clock
// passes the heartbeat timeout and the sweep declares it dead, the
// coordinator severs the link and re-dispatches to the rendezvous
// successor after exactly one capped backoff step — no I/O-deadline
// wait, no lost request — and the answer is annotated redispatched.
func TestDeadWorkerRedispatch(t *testing.T) {
	clk := newFakeClock()
	var sleepMu sync.Mutex
	var sleeps []time.Duration

	cfg := Config{
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatMiss:     3,
		RetryBase:         10 * time.Millisecond,
		RetryMax:          50 * time.Millisecond,
		RequestTimeout:    time.Minute, // huge: only the sweep can unblock the forward
		Now:               clk.Now,
		Sleep: func(d time.Duration) {
			sleepMu.Lock()
			sleeps = append(sleeps, d)
			sleepMu.Unlock()
		},
		Rand: func() float64 { return 0.5 },
	}

	received := make(chan struct{}, 1)
	stalledAddr := fakeWorker(t, func(req *sessiond.Request) *sessiond.Response {
		select {
		case received <- struct{}{}:
		default:
		}
		return nil // hold forever: the worker died mid-request
	})
	goodAddr := fakeWorker(t, func(req *sessiond.Request) *sessiond.Response {
		return &sessiond.Response{ID: req.ID, OK: true, Result: json.RawMessage(`{"executed":1,"checked":1}`)}
	})

	co, addr := startCoordinator(t, cfg)
	co.Registry().Register(WorkerInfo{Name: "stalled", Addr: stalledAddr, Capacity: 4})
	co.Registry().Register(WorkerInfo{Name: "good", Addr: goodAddr, Capacity: 4})

	pinballPath := probeKeyFor(t, co.Registry(), "stalled")

	c, err := sessiond.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	respc := make(chan *sessiond.Response, 1)
	errc := make(chan error, 1)
	go func() {
		resp, err := c.Do(&sessiond.Request{Op: sessiond.OpReplay, File: "x.c", Pinball: pinballPath})
		if err != nil {
			errc <- err
			return
		}
		respc <- resp
	}()

	// The stalled worker holds the request; nothing moves until the
	// sweep.
	select {
	case <-received:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached the stalled worker")
	}

	// Past the heartbeat timeout: the good worker beat, the stalled one
	// went silent. The sweep must declare exactly it dead.
	clk.Advance(time.Duration(cfg.HeartbeatMiss)*cfg.HeartbeatInterval + time.Millisecond)
	co.Registry().Heartbeat("good", 0)
	dead := co.Sweep()
	if len(dead) != 1 || dead[0].Name != "stalled" {
		t.Fatalf("sweep: %v", dead)
	}

	select {
	case resp := <-respc:
		if !resp.OK {
			t.Fatalf("re-dispatched request failed: %+v", resp)
		}
		if resp.Code != sessiond.CodeRedispatched {
			t.Fatalf("survivor's answer not annotated: %+v", resp)
		}
	case err := <-errc:
		t.Fatalf("transport error surfaced to the client: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("request still unanswered after the sweep: re-dispatch did not happen")
	}

	// Exactly one backoff step, within the cap: detection plus one step
	// bounds time-to-recovery at HeartbeatMiss×interval + RetryMax.
	sleepMu.Lock()
	defer sleepMu.Unlock()
	if len(sleeps) != 1 {
		t.Fatalf("recorded %d backoff sleeps, want 1: %v", len(sleeps), sleeps)
	}
	if sleeps[0] < cfg.RetryBase || sleeps[0] > cfg.RetryMax {
		t.Fatalf("backoff %v outside [%v, %v]", sleeps[0], cfg.RetryBase, cfg.RetryMax)
	}
}

func TestCoordinatorNoWorkers(t *testing.T) {
	_, addr := startCoordinator(t, Config{})
	c, err := sessiond.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Do(&sessiond.Request{Op: sessiond.OpReplay, File: "x.c", Pinball: "nowhere.pinball"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Code != sessiond.CodeNoWorkers {
		t.Fatalf("empty fleet: %+v", resp)
	}
}

func TestCoordinatorDrainRefusesSessions(t *testing.T) {
	co, addr := startCoordinator(t, Config{})
	c, err := sessiond.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	co.draining.Store(true)
	resp, err := c.Do(&sessiond.Request{Op: sessiond.OpReplay, File: "x.c", Pinball: "nowhere.pinball"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Code != sessiond.CodeDraining {
		t.Fatalf("draining coordinator: %+v", resp)
	}
	// Health keeps answering during a drain — probes must see it.
	hresp, err := c.Do(&sessiond.Request{Op: sessiond.OpHealth})
	if err != nil || !hresp.OK {
		t.Fatalf("health during drain: %+v, %v", hresp, err)
	}
	var h sessiond.HealthResult
	if json.Unmarshal(hresp.Result, &h) != nil || h.Ready || h.Status != "draining" {
		t.Fatalf("health payload during drain: %+v", h)
	}
}

func TestV1ClientCannotJoinFleet(t *testing.T) {
	_, addr := startCoordinator(t, Config{})
	c, err := sessiond.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Do(&sessiond.Request{Op: sessiond.OpRegister, Worker: "w", Addr: "w:0"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Code != sessiond.CodeBadRequest {
		t.Fatalf("v1 register not rejected: %+v", resp)
	}
}

// --- integration: a real fleet on loopback -------------------------

// fleetSrc mirrors the sessiond protocol tests' workload: a
// lock-guarded counter, so "counter" is a sliceable global and the
// pinball carries checkpoints for windowed sharding.
const fleetSrc = `
int counter;
int mtx;
int worker(int id) {
	int i;
	for (i = 0; i < 15; i++) {
		lock(&mtx);
		counter = counter + read();
		unlock(&mtx);
	}
	return 0;
}
int main() {
	int t = spawn(worker, 1);
	worker(0);
	join(t);
	write(counter);
	return 0;
}`

type fleetFixture struct {
	src  string
	good string
}

func makeFleetFixture(t testing.TB) *fleetFixture {
	t.Helper()
	dir := t.TempDir()
	f := &fleetFixture{
		src:  filepath.Join(dir, "fleet.c"),
		good: filepath.Join(dir, "good.pinball"),
	}
	if err := os.WriteFile(f.src, []byte(fleetSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	prog, err := drdebug.CompileFile(f.src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	input := make([]int64, 64)
	for i := range input {
		input[i] = int64(i + 1)
	}
	pb, err := pinplay.Log(prog, pinplay.LogConfig{
		Seed: 7, MeanQuantum: 13, Input: input, CheckpointEvery: 8,
	}, pinplay.RegionSpec{})
	if err != nil {
		t.Fatalf("log: %v", err)
	}
	if err := pb.Save(f.good); err != nil {
		t.Fatal(err)
	}
	return f
}

func fastWorkerConfig() sessiond.Config {
	return sessiond.Config{
		Supervisor: supervisor.Options{MaxAttempts: 2, Backoff: time.Millisecond, BackoffMax: 5 * time.Millisecond},
	}
}

// startWorker runs a sessiond server plus a fleet agent joined to the
// coordinator.
func startWorker(t *testing.T, name, coord string, beatHook func() bool) *sessiond.Server {
	t.Helper()
	srv := sessiond.New(fastWorkerConfig())
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	ctx, cancel := context.WithCancel(context.Background())
	agent := NewAgent(srv, AgentConfig{
		Coordinator: coord,
		Name:        name,
		Addr:        lis.Addr().String(),
		Capacity:    4,
		StealIdle:   10 * time.Millisecond,
		BeatHook:    beatHook,
	})
	go agent.Run(ctx)
	t.Cleanup(func() {
		cancel()
		sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer scancel()
		srv.Shutdown(sctx)
	})
	return srv
}

func waitAlive(t *testing.T, co *Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(co.Registry().Alive()) >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("only %d workers registered, want %d", len(co.Registry().Alive()), n)
}

// TestFleetDistributedSliceBitIdentical is the fleet's correctness
// anchor: a slice query fanned across two live workers as hedged
// slice_shard hops (with an aggressive straggler deadline, so the steal
// path runs too) must answer bit-identically — same digest, members,
// deps — to the same query on a single standalone daemon.
func TestFleetDistributedSliceBitIdentical(t *testing.T) {
	f := makeFleetFixture(t)

	// Single-node reference.
	ref := sessiond.New(fastWorkerConfig())
	refResp := ref.Execute(&sessiond.Request{Op: sessiond.OpSlice, File: f.src, Pinball: f.good, Var: "counter", Workers: 2}, "ref")
	if !refResp.OK {
		t.Fatalf("reference slice: %+v", refResp)
	}
	var want sessiond.SliceResult
	if err := json.Unmarshal(refResp.Result, &want); err != nil {
		t.Fatal(err)
	}
	if want.Digest == "" {
		t.Fatal("reference slice carries no digest")
	}

	co, addr := startCoordinator(t, Config{
		HeartbeatInterval: 50 * time.Millisecond,
		HedgeAfter:        time.Millisecond, // hedge every hop: exercise steal/fetch
		ShardWindows:      2,
		RequestTimeout:    30 * time.Second,
	})
	startWorker(t, "w1", addr, nil)
	startWorker(t, "w2", addr, nil)
	waitAlive(t, co, 2)

	c, err := sessiond.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for round := 0; round < 3; round++ {
		resp, err := c.Do(&sessiond.Request{Op: sessiond.OpSlice, File: f.src, Pinball: f.good, Var: "counter", Workers: 2})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !resp.OK {
			t.Fatalf("round %d: %+v", round, resp)
		}
		var got sessiond.SliceResult
		if err := json.Unmarshal(resp.Result, &got); err != nil {
			t.Fatal(err)
		}
		if got.Digest != want.Digest || got.Members != want.Members ||
			got.Deps != want.Deps || got.TraceLen != want.TraceLen {
			t.Fatalf("round %d: fleet slice %+v != single-node %+v", round, got, want)
		}
	}

	// Replay and health ride the same fleet.
	resp, err := c.Do(&sessiond.Request{Op: sessiond.OpReplay, File: f.src, Pinball: f.good})
	if err != nil || !resp.OK {
		t.Fatalf("fleet replay: %+v, %v", resp, err)
	}
	stats, err := c.Do(&sessiond.Request{Op: sessiond.OpStats})
	if err != nil || !stats.OK {
		t.Fatalf("fleet stats: %+v, %v", stats, err)
	}
	var st sessiond.StatsResult
	if err := json.Unmarshal(stats.Result, &st); err != nil {
		t.Fatal(err)
	}
	if st.Active != 2 || st.Completed < 4 {
		t.Fatalf("fleet stats: %+v", st)
	}
}

// TestFleetPartitionFailover cuts the coordinator's network toward one
// worker mid-stream: requests keep succeeding via the survivor,
// annotated redispatched when they needed the failover.
func TestFleetPartitionFailover(t *testing.T) {
	f := makeFleetFixture(t)
	var part faultinject.Partition
	var partedAddr struct {
		sync.Mutex
		addr string
	}

	co, addr := startCoordinator(t, Config{
		HeartbeatInterval: 50 * time.Millisecond,
		MinShardWorkers:   99, // forward whole: this test is about routing, not sharding
		RetryBase:         time.Millisecond,
		RetryMax:          5 * time.Millisecond,
		RequestTimeout:    30 * time.Second,
		Dial: func(a string, timeout time.Duration) (*sessiond.Client, error) {
			partedAddr.Lock()
			cut := a == partedAddr.addr && !part.Allow()
			partedAddr.Unlock()
			if cut {
				return nil, fmt.Errorf("injected partition toward %s", a)
			}
			return sessiond.DialTimeout(a, timeout)
		},
	})
	startWorker(t, "w1", addr, nil)
	startWorker(t, "w2", addr, nil)
	waitAlive(t, co, 2)

	// Find a pinball the healthy fleet routes to w1, then partition w1.
	w1addr := ""
	for _, w := range co.Registry().Alive() {
		if w.Name == "w1" {
			w1addr = w.Addr
		}
	}
	probe := probeKeyFor(t, co.Registry(), "w1")
	good := f.good
	// The probe file is not a real pinball; route the real pinball
	// wherever it goes, but make sure at least the probe's owner is cut.
	partedAddr.Lock()
	partedAddr.addr = w1addr
	partedAddr.Unlock()
	part.Cut()

	c, err := sessiond.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Do(&sessiond.Request{Op: sessiond.OpReplay, File: f.src, Pinball: probe, Salvage: false})
	if err != nil {
		t.Fatal(err)
	}
	// The probe routes to the partitioned worker: the coordinator must
	// fail over to w2 and answer — typed (the probe is garbage, so the
	// session itself fails corrupt) but never a transport error, and
	// never no_workers.
	if resp.Code == sessiond.CodeNoWorkers {
		t.Fatalf("partition of one worker starved the fleet: %+v", resp)
	}
	if resp.OK || resp.Code != sessiond.CodeCorrupt {
		t.Fatalf("failover answer: %+v", resp)
	}

	// A real session against the partitioned fleet still succeeds.
	resp, err = c.Do(&sessiond.Request{Op: sessiond.OpReplay, File: f.src, Pinball: good})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("replay under partition: %+v", resp)
	}
	part.Heal()
}

// TestHeartbeatDropperTriggersRedispatch drives the chaos dropper end
// to end: a worker stops beating (Forever), the real-clock sweeper
// declares it dead, and routed work lands on the survivor. The worker
// then resumes beating and re-registers via the Known=false path.
func TestHeartbeatDropperTriggersRedispatch(t *testing.T) {
	f := makeFleetFixture(t)
	var drop faultinject.HeartbeatDropper

	co, addr := startCoordinator(t, Config{
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMiss:     3,
		MinShardWorkers:   99,
		RequestTimeout:    30 * time.Second,
	})
	startWorker(t, "w1", addr, drop.Allow)
	startWorker(t, "w2", addr, nil)
	waitAlive(t, co, 2)

	drop.Forever()
	deadline := time.Now().Add(5 * time.Second)
	for len(co.Registry().Alive()) != 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	alive := co.Registry().Alive()
	if len(alive) != 1 || alive[0].Name != "w2" {
		t.Fatalf("silent worker not declared dead: %v", alive)
	}

	// The fleet still answers through the survivor.
	c, err := sessiond.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Do(&sessiond.Request{Op: sessiond.OpReplay, File: f.src, Pinball: f.good})
	if err != nil || !resp.OK {
		t.Fatalf("replay with one dead worker: %+v, %v", resp, err)
	}

	// Heal: the next heartbeat gets Known=false and re-registers.
	drop.Resume()
	deadline = time.Now().Add(5 * time.Second)
	for len(co.Registry().Alive()) != 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if len(co.Registry().Alive()) != 2 {
		t.Fatalf("healed worker did not re-register: %v", co.Registry().Alive())
	}
}
