package fleet

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/sessiond"
	"repro/internal/store"
	"repro/internal/supervisor"
)

// storeOp answers the store ops at the coordinator. Locate is answered
// from the registry (the fleet-wide ranking workers heal from); puts
// are placed on the digest's rendezvous owner and replicated to its
// successor; fetch and stat forward to the owner with the ordinary
// transport failover.
func (co *Coordinator) storeOp(req *sessiond.Request) sessiond.Response {
	switch req.Op {
	case sessiond.OpStoreLocate:
		if req.Digest == "" {
			return sessiond.Response{ID: req.ID, OK: false, Code: sessiond.CodeBadRequest,
				Error: "store_locate needs digest"}
		}
		workers := co.reg.Ranked("digest:"+req.Digest, func(name string) bool { return co.wbrk.open(name) })
		addrs := make([]string, 0, len(workers))
		for _, w := range workers {
			addrs = append(addrs, w.Addr)
		}
		return sessiond.Response{ID: req.ID, OK: true, Result: encode(sessiond.StoreLocateResult{
			Digest: req.Digest, Addrs: addrs,
		})}
	case sessiond.OpStorePut:
		return co.storePut(req)
	case sessiond.OpStoreFetch, sessiond.OpStoreStat:
		if req.Digest == "" {
			return sessiond.Response{ID: req.ID, OK: false, Code: sessiond.CodeBadRequest,
				Error: req.Op + " needs digest"}
		}
		return co.forward(req, "digest:"+req.Digest)
	}
	return sessiond.Response{ID: req.ID, OK: false, Code: sessiond.CodeBadRequest,
		Error: "unknown store op " + req.Op}
}

// storePut uploads the blob to the digest's rendezvous owner (failing
// over down the ranking on transport errors) and then best-effort
// replicates it to the next-ranked worker, so the owner dying does not
// strand the fleet's only copy. The answer is the primary's, decorated
// with the full acknowledged replica list. A typed refusal from a
// worker (corrupt blob, no store configured) is the request's answer —
// every other worker would refuse identically.
func (co *Coordinator) storePut(req *sessiond.Request) sessiond.Response {
	if len(req.Blob) == 0 {
		return sessiond.Response{ID: req.ID, OK: false, Code: sessiond.CodeBadRequest,
			Error: "store_put needs blob"}
	}
	digest := store.Digest(req.Blob)
	ranked := co.reg.Ranked("digest:"+digest, func(name string) bool { return co.wbrk.open(name) })
	if len(ranked) == 0 {
		return sessiond.Response{ID: req.ID, OK: false, Code: sessiond.CodeNoWorkers,
			Error: "no live worker to store on"}
	}

	var primary *sessiond.Response
	var acked []string
	var lastErr error
	var backoff time.Duration
	attempts := 0
	for _, w := range ranked {
		if primary == nil && attempts >= co.cfg.MaxAttempts {
			break
		}
		if primary == nil && attempts > 0 {
			backoff = supervisor.DecorrelatedJitter(backoff, co.cfg.RetryBase, co.cfg.RetryMax, co.cfg.Rand)
			co.cfg.Sleep(backoff)
		}
		attempts++
		resp, err := co.send(w, req, nil)
		if err != nil {
			co.cfg.Logf("fleet: store_put %s to %s failed: %v", digest, w.Name, err)
			lastErr = err
			continue
		}
		if !resp.OK {
			if primary == nil {
				resp.ID = req.ID
				return *resp
			}
			// The replica refused (e.g. no store configured there); the
			// primary already holds the bytes, so the put still succeeds.
			co.cfg.Logf("fleet: store_put replica on %s refused: %s", w.Name, resp.Code)
			break
		}
		acked = append(acked, w.Name)
		if primary != nil {
			break // owner + one successor is the replication factor
		}
		primary = resp
	}
	if primary == nil {
		msg := "no live worker to store on"
		if lastErr != nil {
			msg = fmt.Sprintf("no worker accepted the put after %d attempts: %v", attempts, lastErr)
		}
		return sessiond.Response{ID: req.ID, OK: false, Code: sessiond.CodeNoWorkers, Error: msg}
	}

	// Decorate the primary's answer with who acknowledged the bytes.
	var pr sessiond.StorePutResult
	if err := json.Unmarshal(primary.Result, &pr); err == nil {
		pr.Replicas = acked
		primary.Result = encode(pr)
	}
	primary.ID = req.ID
	return *primary
}

// CoordinatorLocator implements sessiond.Locator for a worker daemon:
// ask the coordinator which workers the fleet ranks to hold a digest,
// drop the asking worker itself, and return the rest best-first. Every
// call opens a fresh connection — locates happen only on the healing
// path, where staleness costs more than a dial.
type CoordinatorLocator struct {
	// Coordinator is the coordinator's address.
	Coordinator string
	// DialTimeout bounds the connect (default 2s).
	DialTimeout time.Duration
	// Dial injects the transport for tests (nil = sessiond.DialTimeout).
	Dial func(addr string, timeout time.Duration) (*sessiond.Client, error)

	mu   sync.Mutex
	self string
}

// SetSelf records the worker's own advertised address, which Locate
// excludes — a daemon healing its store must never "fetch" from itself.
// Settable after construction because the advertised address is only
// known once the listener is bound.
func (l *CoordinatorLocator) SetSelf(addr string) {
	l.mu.Lock()
	l.self = addr
	l.mu.Unlock()
}

// Locate implements sessiond.Locator. Failures return nil — the healing
// ladder treats an unreachable coordinator like having no peers.
func (l *CoordinatorLocator) Locate(digest string) []string {
	dial := l.Dial
	if dial == nil {
		dial = sessiond.DialTimeout
	}
	d := l.DialTimeout
	if d <= 0 {
		d = 2 * time.Second
	}
	c, err := dial(l.Coordinator, d)
	if err != nil {
		return nil
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(5 * time.Second))
	resp, err := c.Do(&sessiond.Request{Op: sessiond.OpStoreLocate, Digest: digest, Proto: sessiond.ProtoCurrent})
	if err != nil || !resp.OK {
		return nil
	}
	var lr sessiond.StoreLocateResult
	if err := json.Unmarshal(resp.Result, &lr); err != nil {
		return nil
	}
	l.mu.Lock()
	self := l.self
	l.mu.Unlock()
	out := lr.Addrs[:0:0]
	for _, a := range lr.Addrs {
		if a != self {
			out = append(out, a)
		}
	}
	return out
}
