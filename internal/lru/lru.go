// Package lru is the size-bounded LRU cache with single-flight loading
// that backs the process-lifetime slicing artefact caches and the
// session daemon. It exists because the daemon turned unbounded
// process-lifetime maps into a liability: a long-lived drserved process
// serving many pinballs must share hot engines between concurrent
// sessions (one build, many readers) while keeping total retention
// bounded — so the cache evicts least-recently-used entries at a fixed
// capacity and collapses concurrent loads of the same key into one
// builder with everyone else waiting on its result.
package lru

import (
	"context"
	"sync"
)

// Stats is a cache's counter snapshot.
type Stats struct {
	Entries   int
	Hits      int64
	Misses    int64
	Evictions int64
}

// entry is one resident cache slot, a node of the intrusive LRU list
// (front = most recently used).
type entry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *entry[K, V]
}

// flight is one in-progress load; concurrent GetOrLoad calls for the
// same key share it and wait on done.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Cache is a bounded LRU keyed by K. The zero value is not usable; use
// New. All methods are safe for concurrent use.
type Cache[K comparable, V any] struct {
	mu      sync.Mutex
	cap     int
	entries map[K]*entry[K, V]
	head    *entry[K, V] // most recently used
	tail    *entry[K, V] // least recently used
	loading map[K]*flight[V]

	hits      int64
	misses    int64
	evictions int64

	// onEvict, when set, observes each eviction (called without the lock
	// held, so it may re-enter the cache).
	onEvict func(K, V)
}

// New returns a cache holding at most capacity entries (minimum 1).
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[K, V]{
		cap:     capacity,
		entries: make(map[K]*entry[K, V], capacity),
		loading: make(map[K]*flight[V]),
	}
}

// OnEvict registers fn to observe evictions.
func (c *Cache[K, V]) OnEvict(fn func(K, V)) {
	c.mu.Lock()
	c.onEvict = fn
	c.mu.Unlock()
}

// unlink removes e from the LRU list.
func (c *Cache[K, V]) unlink(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most recently used entry.
func (c *Cache[K, V]) pushFront(e *entry[K, V]) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// evictOverflowLocked drops LRU entries until the cache fits its
// capacity, returning the victims for the (unlocked) eviction callback.
func (c *Cache[K, V]) evictOverflowLocked() []*entry[K, V] {
	var out []*entry[K, V]
	for len(c.entries) > c.cap && c.tail != nil {
		v := c.tail
		c.unlink(v)
		delete(c.entries, v.key)
		c.evictions++
		out = append(out, v)
	}
	return out
}

// notifyEvicted runs the eviction callback for each victim.
func (c *Cache[K, V]) notifyEvicted(victims []*entry[K, V], fn func(K, V)) {
	if fn == nil {
		return
	}
	for _, v := range victims {
		fn(v.key, v.val)
	}
}

// Get returns the cached value for k, marking it most recently used.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.unlink(e)
	c.pushFront(e)
	return e.val, true
}

// Put inserts (or refreshes) k, evicting the least recently used
// entries if the cache overflows.
func (c *Cache[K, V]) Put(k K, v V) {
	c.mu.Lock()
	if e, ok := c.entries[k]; ok {
		e.val = v
		c.unlink(e)
		c.pushFront(e)
		c.mu.Unlock()
		return
	}
	e := &entry[K, V]{key: k, val: v}
	c.entries[k] = e
	c.pushFront(e)
	victims := c.evictOverflowLocked()
	fn := c.onEvict
	c.mu.Unlock()
	c.notifyEvicted(victims, fn)
}

// GetOrLoad returns the cached value for k, or runs load to produce it.
// Concurrent calls for the same key share one load (single-flight): one
// caller builds, the rest wait on its result. A failed load caches
// nothing — every waiter gets the error and the next call loads again.
func (c *Cache[K, V]) GetOrLoad(k K, load func() (V, error)) (V, error) {
	c.mu.Lock()
	if e, ok := c.entries[k]; ok {
		c.hits++
		c.unlink(e)
		c.pushFront(e)
		v := e.val
		c.mu.Unlock()
		return v, nil
	}
	if f, ok := c.loading[k]; ok {
		// Another goroutine is building this entry; wait for it. A
		// failed shared load is returned to every waiter rather than
		// dog-piling fresh loads.
		c.mu.Unlock()
		<-f.done
		return f.val, f.err
	}
	c.misses++
	f := &flight[V]{done: make(chan struct{})}
	c.loading[k] = f
	c.mu.Unlock()

	f.val, f.err = load()
	c.mu.Lock()
	delete(c.loading, k)
	var victims []*entry[K, V]
	fn := c.onEvict
	if f.err == nil {
		if _, ok := c.entries[k]; !ok {
			e := &entry[K, V]{key: k, val: f.val}
			c.entries[k] = e
			c.pushFront(e)
			victims = c.evictOverflowLocked()
		}
	}
	c.mu.Unlock()
	close(f.done)
	c.notifyEvicted(victims, fn)
	return f.val, f.err
}

// GetOrLoadCtx is GetOrLoad with caller cancellation: a waiter sharing
// another goroutine's in-flight load gives up when ctx ends (the load
// itself continues and still caches for everyone else — one hedged
// caller abandoning must not waste the build). The builder receives ctx
// and decides for itself whether to honor cancellation mid-load; a load
// that returns an error caches nothing, exactly like GetOrLoad. This is
// the store-fetch entry point: a session whose hedged peer fetch
// already won cancels its wait on the slower flight without killing it.
func (c *Cache[K, V]) GetOrLoadCtx(ctx context.Context, k K, load func(ctx context.Context) (V, error)) (V, error) {
	c.mu.Lock()
	if e, ok := c.entries[k]; ok {
		c.hits++
		c.unlink(e)
		c.pushFront(e)
		v := e.val
		c.mu.Unlock()
		return v, nil
	}
	if f, ok := c.loading[k]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.val, f.err
		case <-ctx.Done():
			var zero V
			return zero, ctx.Err()
		}
	}
	c.misses++
	f := &flight[V]{done: make(chan struct{})}
	c.loading[k] = f
	c.mu.Unlock()

	f.val, f.err = load(ctx)
	c.mu.Lock()
	delete(c.loading, k)
	var victims []*entry[K, V]
	fn := c.onEvict
	if f.err == nil {
		if _, ok := c.entries[k]; !ok {
			e := &entry[K, V]{key: k, val: f.val}
			c.entries[k] = e
			c.pushFront(e)
			victims = c.evictOverflowLocked()
		}
	}
	c.mu.Unlock()
	close(f.done)
	c.notifyEvicted(victims, fn)
	return f.val, f.err
}

// Remove drops k from the cache if resident, reporting whether it was.
// In-flight loads of k are unaffected (they complete and re-insert) —
// Remove invalidates a value discovered stale, it does not cancel work.
func (c *Cache[K, V]) Remove(k K) bool {
	c.mu.Lock()
	e, ok := c.entries[k]
	if ok {
		c.unlink(e)
		delete(c.entries, k)
	}
	c.mu.Unlock()
	return ok
}

// Len returns the resident entry count.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Cap returns the capacity.
func (c *Cache[K, V]) Cap() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cap
}

// SetCap changes the capacity (minimum 1), evicting immediately if the
// cache now overflows.
func (c *Cache[K, V]) SetCap(n int) {
	if n < 1 {
		n = 1
	}
	c.mu.Lock()
	c.cap = n
	victims := c.evictOverflowLocked()
	fn := c.onEvict
	c.mu.Unlock()
	c.notifyEvicted(victims, fn)
}

// Stats returns the counter snapshot.
func (c *Cache[K, V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:   len(c.entries),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}

// Reset empties the cache and zeroes the counters. In-progress loads
// are unaffected (they complete and insert into the emptied cache).
func (c *Cache[K, V]) Reset() {
	c.mu.Lock()
	c.entries = make(map[K]*entry[K, V], c.cap)
	c.head, c.tail = nil, nil
	c.hits, c.misses, c.evictions = 0, 0, 0
	c.mu.Unlock()
}
