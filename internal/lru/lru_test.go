package lru

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGetPutEvictsLRU(t *testing.T) {
	c := New[int, string](2)
	c.Put(1, "a")
	c.Put(2, "b")
	if _, ok := c.Get(1); !ok { // 1 is now most recently used
		t.Fatal("1 missing")
	}
	c.Put(3, "c") // evicts 2, the LRU entry
	if _, ok := c.Get(2); ok {
		t.Fatal("2 survived eviction")
	}
	for _, k := range []int{1, 3} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%d evicted, want resident", k)
		}
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPutRefreshesExisting(t *testing.T) {
	c := New[int, string](2)
	c.Put(1, "a")
	c.Put(2, "b")
	c.Put(1, "a2") // refresh, not insert: no eviction
	c.Put(3, "c")  // evicts 2
	if v, ok := c.Get(1); !ok || v != "a2" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	if _, ok := c.Get(2); ok {
		t.Fatal("2 survived eviction")
	}
}

func TestGetOrLoadSingleFlight(t *testing.T) {
	c := New[string, int](4)
	var loads atomic.Int64
	gate := make(chan struct{})
	const goroutines = 16
	var wg sync.WaitGroup
	results := make([]int, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.GetOrLoad("k", func() (int, error) {
				loads.Add(1)
				<-gate
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := loads.Load(); n != 1 {
		t.Fatalf("load ran %d times, want 1 (single-flight)", n)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("goroutine %d got %d", i, v)
		}
	}
}

func TestGetOrLoadErrorNotCached(t *testing.T) {
	c := New[string, int](4)
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 2; i++ {
		if _, err := c.GetOrLoad("k", func() (int, error) { calls++; return 0, boom }); !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	}
	if calls != 2 {
		t.Fatalf("failed load cached: %d calls, want 2", calls)
	}
	if c.Len() != 0 {
		t.Fatalf("error entry resident: len=%d", c.Len())
	}
}

func TestSetCapShrinksImmediately(t *testing.T) {
	c := New[int, int](8)
	var evicted []int
	c.OnEvict(func(k, _ int) { evicted = append(evicted, k) })
	for i := 0; i < 8; i++ {
		c.Put(i, i)
	}
	c.SetCap(3)
	if c.Len() != 3 || c.Cap() != 3 {
		t.Fatalf("len=%d cap=%d", c.Len(), c.Cap())
	}
	// The three most recently inserted entries survive.
	for _, k := range []int{5, 6, 7} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%d evicted, want resident", k)
		}
	}
	if len(evicted) != 5 {
		t.Fatalf("evicted %v, want 5 victims", evicted)
	}
}

func TestReset(t *testing.T) {
	c := New[int, int](4)
	c.Put(1, 1)
	c.Get(1)
	c.Get(2)
	c.Reset()
	if st := c.Stats(); st.Entries != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("stats after reset: %+v", st)
	}
}

// TestConcurrentMixedOps hammers every operation from many goroutines;
// run under -race this checks the locking discipline, and afterwards the
// cache must still respect its capacity.
func TestConcurrentMixedOps(t *testing.T) {
	c := New[int, int](8)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (g + i) % 24
				switch i % 4 {
				case 0:
					c.Put(k, i)
				case 1:
					c.Get(k)
				case 2:
					c.GetOrLoad(k, func() (int, error) { return i, nil })
				case 3:
					if i%40 == 3 {
						c.SetCap(4 + i%8)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > c.Cap() {
		t.Fatalf("len %d exceeds cap %d", c.Len(), c.Cap())
	}
}

func Example() {
	c := New[string, string](2)
	v, _ := c.GetOrLoad("greeting", func() (string, error) { return "hello", nil })
	fmt.Println(v)
	// Output: hello
}

// TestEvictionRacingInflightLoad pins the daemon's hot-engine hazard:
// a slow single-flight load in progress while eviction churn pushes
// entries through the cache. The loader must run exactly once no
// matter how many waiters pile on, every waiter must get its value,
// and accounting must balance — every value that ever entered the
// cache is either still resident or was reported to OnEvict exactly
// once. A double-load would double-build an engine; a leak would pin
// one forever; a double-evict would tear one down under a reader.
func TestEvictionRacingInflightLoad(t *testing.T) {
	const waiters = 10
	c := New[int, *int](1) // capacity 1: every insert evicts something

	var evictMu sync.Mutex
	evicted := make(map[*int]int)
	c.OnEvict(func(k int, v *int) {
		evictMu.Lock()
		evicted[v]++
		evictMu.Unlock()
	})

	var loads atomic.Int64
	gate := make(chan struct{})
	slowVal := new(int)
	slowLoad := func() (*int, error) {
		loads.Add(1)
		<-gate // held open until the churn below has run
		return slowVal, nil
	}

	var wg sync.WaitGroup
	results := make([]*int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.GetOrLoad(0, slowLoad)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}

	// While the load is in flight, churn the cache through many
	// insert+evict cycles on other keys.
	churned := make([]*int, 64)
	for i := range churned {
		churned[i] = new(int)
		c.Put(i+1, churned[i])
	}
	close(gate)
	wg.Wait()

	if n := loads.Load(); n != 1 {
		t.Fatalf("slow key loaded %d times, want 1 (single-flight broken by eviction churn)", n)
	}
	for i, v := range results {
		if v != slowVal {
			t.Fatalf("waiter %d got a different value: eviction churn split the flight", i)
		}
	}

	// Leak/double-free accounting. The churn finished before the gate
	// opened, so the slow load's insert evicted the last churned value:
	// every churned value must have been evicted exactly once, and the
	// sole resident must be the slow value.
	evictMu.Lock()
	defer evictMu.Unlock()
	for i, v := range churned {
		if evicted[v] != 1 {
			t.Fatalf("churned value %d evicted %d times, want 1 (0 = leaked, >1 = double-evicted)", i, evicted[v])
		}
	}
	if evicted[slowVal] != 0 {
		t.Fatalf("slow value evicted %d times while still the sole resident", evicted[slowVal])
	}
	if got, ok := c.Get(0); !ok || got != slowVal {
		t.Fatal("slow value not resident after its load completed")
	}
	if c.Len() != 1 {
		t.Fatalf("len %d with capacity 1", c.Len())
	}
}

// TestEvictedWhileLoadingReloads pins the reload contract: once a key's
// entry is evicted, a later GetOrLoad builds it again — eviction during
// an unrelated key's in-flight load must not resurrect stale flights.
func TestEvictedWhileLoadingReloads(t *testing.T) {
	c := New[int, int](1)
	var loads atomic.Int64
	load := func() (int, error) { loads.Add(1); return 7, nil }

	if v, _ := c.GetOrLoad(0, load); v != 7 {
		t.Fatal("first load")
	}
	c.Put(1, 1) // evicts key 0
	if _, ok := c.Get(0); ok {
		t.Fatal("key 0 survived eviction")
	}
	if v, _ := c.GetOrLoad(0, load); v != 7 {
		t.Fatal("reload")
	}
	if loads.Load() != 2 {
		t.Fatalf("loads = %d, want 2 (evicted key must reload)", loads.Load())
	}
}

// TestEvictionRacesStoreFetch models the sessiond spool cache under a
// slicing storm: a tiny cache, many concurrent GetOrLoadCtx fetches of
// distinct digests (each a slow materialization), eviction churn from
// Puts, and Remove invalidations racing it all. The contract under
// -race: every caller gets exactly its own key's value, and the cache
// never exceeds capacity once the dust settles.
func TestEvictionRacesStoreFetch(t *testing.T) {
	const keys = 24
	c := New[int, string](2)
	var wg sync.WaitGroup
	ctx := context.Background()
	errs := make([]error, keys*3)
	for round := 0; round < 3; round++ {
		for k := 0; k < keys; k++ {
			wg.Add(1)
			go func(round, k int) {
				defer wg.Done()
				v, err := c.GetOrLoadCtx(ctx, k, func(context.Context) (string, error) {
					runtime.Gosched() // widen the in-flight window
					return fmt.Sprintf("digest-%d", k), nil
				})
				if err != nil {
					errs[round*keys+k] = err
					return
				}
				if want := fmt.Sprintf("digest-%d", k); v != want {
					errs[round*keys+k] = fmt.Errorf("got %q, want %q", v, want)
				}
			}(round, k)
		}
		// Concurrent invalidation: a GC deciding spooled files are stale.
		wg.Add(1)
		go func(round int) {
			defer wg.Done()
			for k := 0; k < keys; k += 3 {
				c.Remove(k)
			}
			c.Put(1000+round, "churn")
		}(round)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
	}
	if c.Len() > c.Cap() {
		t.Fatalf("len %d exceeds capacity %d", c.Len(), c.Cap())
	}
}

// TestHedgedWaiterCancelPrimaryWins pins the hedged-fetch contract on
// GetOrLoadCtx: a waiter sharing another goroutine's in-flight load
// abandons its wait the moment its context ends (its own hedged fetch
// already produced the answer), without killing the shared load — the
// builder completes, the value caches, and nothing loads twice.
func TestHedgedWaiterCancelPrimaryWins(t *testing.T) {
	c := New[string, int](4)
	var loads atomic.Int64
	gate := make(chan struct{})
	builderIn := make(chan struct{})

	// Builder: starts the slow "peer fetch" flight.
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, err := c.GetOrLoadCtx(context.Background(), "digest", func(context.Context) (int, error) {
			loads.Add(1)
			close(builderIn)
			<-gate
			return 42, nil
		})
		if err != nil || v != 42 {
			t.Errorf("builder: %d, %v", v, err)
		}
	}()
	<-builderIn

	// Hedged waiter: joins the flight, then its primary wins elsewhere
	// and it cancels. It must return promptly with ctx.Err() while the
	// load is still blocked on gate.
	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := c.GetOrLoadCtx(ctx, "digest", func(context.Context) (int, error) {
			t.Error("waiter started a second load for an in-flight key")
			return 0, nil
		})
		waiterDone <- err
	}()
	cancel()
	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter still blocked on the shared flight")
	}

	// The abandoned flight still completes and caches for everyone else.
	close(gate)
	<-done
	if v, ok := c.Get("digest"); !ok || v != 42 {
		t.Fatalf("value not cached after waiter abandoned: %d, %v", v, ok)
	}
	if n := loads.Load(); n != 1 {
		t.Fatalf("loads = %d, want 1 (cancellation must not respawn the load)", n)
	}
}
