package lru

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetPutEvictsLRU(t *testing.T) {
	c := New[int, string](2)
	c.Put(1, "a")
	c.Put(2, "b")
	if _, ok := c.Get(1); !ok { // 1 is now most recently used
		t.Fatal("1 missing")
	}
	c.Put(3, "c") // evicts 2, the LRU entry
	if _, ok := c.Get(2); ok {
		t.Fatal("2 survived eviction")
	}
	for _, k := range []int{1, 3} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%d evicted, want resident", k)
		}
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPutRefreshesExisting(t *testing.T) {
	c := New[int, string](2)
	c.Put(1, "a")
	c.Put(2, "b")
	c.Put(1, "a2") // refresh, not insert: no eviction
	c.Put(3, "c")  // evicts 2
	if v, ok := c.Get(1); !ok || v != "a2" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	if _, ok := c.Get(2); ok {
		t.Fatal("2 survived eviction")
	}
}

func TestGetOrLoadSingleFlight(t *testing.T) {
	c := New[string, int](4)
	var loads atomic.Int64
	gate := make(chan struct{})
	const goroutines = 16
	var wg sync.WaitGroup
	results := make([]int, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.GetOrLoad("k", func() (int, error) {
				loads.Add(1)
				<-gate
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := loads.Load(); n != 1 {
		t.Fatalf("load ran %d times, want 1 (single-flight)", n)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("goroutine %d got %d", i, v)
		}
	}
}

func TestGetOrLoadErrorNotCached(t *testing.T) {
	c := New[string, int](4)
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 2; i++ {
		if _, err := c.GetOrLoad("k", func() (int, error) { calls++; return 0, boom }); !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	}
	if calls != 2 {
		t.Fatalf("failed load cached: %d calls, want 2", calls)
	}
	if c.Len() != 0 {
		t.Fatalf("error entry resident: len=%d", c.Len())
	}
}

func TestSetCapShrinksImmediately(t *testing.T) {
	c := New[int, int](8)
	var evicted []int
	c.OnEvict(func(k, _ int) { evicted = append(evicted, k) })
	for i := 0; i < 8; i++ {
		c.Put(i, i)
	}
	c.SetCap(3)
	if c.Len() != 3 || c.Cap() != 3 {
		t.Fatalf("len=%d cap=%d", c.Len(), c.Cap())
	}
	// The three most recently inserted entries survive.
	for _, k := range []int{5, 6, 7} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%d evicted, want resident", k)
		}
	}
	if len(evicted) != 5 {
		t.Fatalf("evicted %v, want 5 victims", evicted)
	}
}

func TestReset(t *testing.T) {
	c := New[int, int](4)
	c.Put(1, 1)
	c.Get(1)
	c.Get(2)
	c.Reset()
	if st := c.Stats(); st.Entries != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("stats after reset: %+v", st)
	}
}

// TestConcurrentMixedOps hammers every operation from many goroutines;
// run under -race this checks the locking discipline, and afterwards the
// cache must still respect its capacity.
func TestConcurrentMixedOps(t *testing.T) {
	c := New[int, int](8)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (g + i) % 24
				switch i % 4 {
				case 0:
					c.Put(k, i)
				case 1:
					c.Get(k)
				case 2:
					c.GetOrLoad(k, func() (int, error) { return i, nil })
				case 3:
					if i%40 == 3 {
						c.SetCap(4 + i%8)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > c.Cap() {
		t.Fatalf("len %d exceeds cap %d", c.Len(), c.Cap())
	}
}

func Example() {
	c := New[string, string](2)
	v, _ := c.GetOrLoad("greeting", func() (string, error) { return "hello", nil })
	fmt.Println(v)
	// Output: hello
}
