package vm_test

import (
	"testing"
	"testing/quick"

	"repro/internal/cc"
	"repro/internal/isa"
	"repro/internal/vm"
)

const racySrc = `
int counter;
int mtx;
int done;
int worker(int n) {
	int i;
	for (i = 0; i < n; i++) {
		lock(&mtx);
		counter = counter + 1;
		unlock(&mtx);
	}
	return 0;
}
int main() {
	int t1 = spawn(worker, 200);
	int t2 = spawn(worker, 200);
	worker(100);
	join(t1);
	join(t2);
	write(counter);
	return 0;
}`

func compile(t testing.TB, src string) *isa.Program {
	t.Helper()
	p, err := cc.CompileSource("t.c", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

type collectTracer struct {
	vm.NopTracer
	events   []vm.InstrEvent
	edges    []vm.OrderEdge
	syscalls []vm.SyscallRecord
}

func (c *collectTracer) OnInstr(ev *vm.InstrEvent)    { c.events = append(c.events, *ev) }
func (c *collectTracer) OnOrderEdge(e vm.OrderEdge)   { c.edges = append(c.edges, e) }
func (c *collectTracer) OnSyscall(r vm.SyscallRecord) { c.syscalls = append(c.syscalls, r) }

func TestSameSeedSameExecution(t *testing.T) {
	prog := compile(t, racySrc)
	runOnce := func(seed int64) ([]vm.Quantum, []int64) {
		m := vm.New(prog, vm.Config{Sched: vm.NewRandomScheduler(seed, 37), MaxSteps: 10_000_000})
		m.Run()
		return m.Quanta(), m.Output()
	}
	q1, o1 := runOnce(5)
	q2, o2 := runOnce(5)
	if len(q1) != len(q2) {
		t.Fatalf("same seed produced different schedules: %d vs %d quanta", len(q1), len(q2))
	}
	for i := range q1 {
		if q1[i] != q2[i] {
			t.Fatalf("quantum %d differs: %v vs %v", i, q1[i], q2[i])
		}
	}
	if o1[0] != o2[0] || o1[0] != 500 {
		t.Fatalf("outputs %v %v, want 500", o1, o2)
	}
}

func TestDifferentSeedsDifferentSchedules(t *testing.T) {
	prog := compile(t, racySrc)
	diff := false
	base := vm.New(prog, vm.Config{Sched: vm.NewRandomScheduler(1, 37), MaxSteps: 10_000_000})
	base.Run()
	for seed := int64(2); seed < 6; seed++ {
		m := vm.New(prog, vm.Config{Sched: vm.NewRandomScheduler(seed, 37), MaxSteps: 10_000_000})
		m.Run()
		if len(m.Quanta()) != len(base.Quanta()) {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("4 different seeds all produced identical schedule shapes")
	}
}

func TestScheduleReplayReproducesExecution(t *testing.T) {
	prog := compile(t, racySrc)
	tr := &collectTracer{}
	m1 := vm.New(prog, vm.Config{Sched: vm.NewRandomScheduler(99, 23), Tracer: tr, MaxSteps: 10_000_000})
	m1.Run()

	tr2 := &collectTracer{}
	m2 := vm.New(prog, vm.Config{Sched: vm.NewReplayScheduler(m1.Quanta()), Tracer: tr2, MaxSteps: 10_000_000})
	m2.Run()

	if len(tr.events) != len(tr2.events) {
		t.Fatalf("event counts differ: %d vs %d", len(tr.events), len(tr2.events))
	}
	for i := range tr.events {
		if tr.events[i] != tr2.events[i] {
			t.Fatalf("event %d differs:\n%+v\n%+v", i, tr.events[i], tr2.events[i])
		}
	}
	if !m1.Snapshot().Mem.Equal(m2.Snapshot().Mem) {
		t.Error("final memory differs between original and schedule replay")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	prog := compile(t, racySrc)
	m := vm.New(prog, vm.Config{Sched: vm.NewRandomScheduler(3, 41), MaxSteps: 10_000_000})
	// Execute half the program, snapshot, finish, then restore and
	// finish again with the recorded schedule suffix: results must agree.
	for i := 0; i < 5000 && m.StepOne(); i++ {
	}
	snap := m.Snapshot()
	m.ResetQuanta()
	for m.StepOne() {
	}
	out1 := append([]int64(nil), m.Output()...)
	suffix := m.Quanta()

	m2 := vm.NewFromState(prog, snap, vm.Config{Sched: vm.NewReplayScheduler(suffix), MaxSteps: 10_000_000})
	m2.Run()
	out2 := m2.Output()
	if len(out1) != len(out2) {
		t.Fatalf("outputs differ: %v vs %v", out1, out2)
	}
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatalf("outputs differ at %d: %v vs %v", i, out1, out2)
		}
	}
}

func TestOrderEdgesOnSharedCounter(t *testing.T) {
	prog := compile(t, racySrc)
	tr := &collectTracer{}
	m := vm.New(prog, vm.Config{Sched: vm.NewRandomScheduler(11, 13), Tracer: tr, MaxSteps: 10_000_000})
	m.Run()
	if len(tr.edges) == 0 {
		t.Fatal("no order edges recorded for cross-thread counter updates")
	}
	cross := 0
	for _, e := range tr.edges {
		if e.FromTid == e.ToTid {
			t.Fatalf("order edge within one thread: %+v", e)
		}
		cross++
	}
	if cross == 0 {
		t.Error("expected cross-thread edges")
	}
}

func TestDeadlockDetection(t *testing.T) {
	prog := compile(t, `
int a;
int b;
int t2(int x) {
	lock(&b);
	yield();
	lock(&a);
	unlock(&a);
	unlock(&b);
	return 0;
}
int main() {
	int t = spawn(t2, 0);
	lock(&a);
	yield();
	lock(&b);
	unlock(&b);
	unlock(&a);
	join(t);
	return 0;
}`)
	// Find a schedule that deadlocks (alternating at the yields).
	deadlocked := false
	for seed := int64(1); seed < 50; seed++ {
		m := vm.New(prog, vm.Config{Sched: vm.NewRandomScheduler(seed, 2), MaxSteps: 1_000_000})
		if m.Run() == vm.StopDeadlock {
			deadlocked = true
			break
		}
	}
	if !deadlocked {
		t.Error("no seed produced the classic AB-BA deadlock")
	}
}

func TestUnlockNotHeldFails(t *testing.T) {
	prog := compile(t, `
int m;
int main() { unlock(&m); return 0; }`)
	mach := vm.New(prog, vm.Config{MaxSteps: 1000})
	if mach.Run() != vm.StopFailure {
		t.Fatalf("stop = %v, want failure", mach.Stopped())
	}
}

func TestDivideByZeroFails(t *testing.T) {
	prog := compile(t, `
int main() { int z = 0; write(1 / z); return 0; }`)
	m := vm.New(prog, vm.Config{MaxSteps: 1000})
	if m.Run() != vm.StopFailure {
		t.Fatalf("stop = %v, want failure", m.Stopped())
	}
}

func TestMaxStepsStops(t *testing.T) {
	prog := compile(t, `int main() { while (1) {} return 0; }`)
	m := vm.New(prog, vm.Config{MaxSteps: 1000})
	if m.Run() != vm.StopMaxSteps {
		t.Fatalf("stop = %v, want max-steps", m.Stopped())
	}
}

func TestMemoryImageEqual(t *testing.T) {
	m1 := vm.NewMemory()
	m2 := vm.NewMemory()
	m1.Write(100, 5)
	m2.Write(100, 5)
	if !m1.Snapshot().Equal(m2.Snapshot()) {
		t.Error("identical memories compare unequal")
	}
	m2.Write(4096*10, 0) // touching a page with zeros must not matter
	if !m1.Snapshot().Equal(m2.Snapshot()) {
		t.Error("zero page broke equality")
	}
	m2.Write(7, 1)
	if m1.Snapshot().Equal(m2.Snapshot()) {
		t.Error("different memories compare equal")
	}
}

func TestMemoryReadWriteProperty(t *testing.T) {
	mem := vm.NewMemory()
	shadow := map[int64]int64{}
	f := func(addrRaw uint32, val int64) bool {
		addr := int64(addrRaw)
		mem.Write(addr, val)
		shadow[addr] = val
		// Check this and a few neighbours against the shadow map.
		for d := int64(-2); d <= 2; d++ {
			a := addr + d
			if a < 0 {
				continue
			}
			if mem.Read(a) != shadow[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	prog := compile(t, `int g; int main() { g = 1; g = 2; return 0; }`)
	m := vm.New(prog, vm.Config{MaxSteps: 1000})
	snap := m.Snapshot()
	m.Run()
	snap2 := m.Snapshot()
	if snap.Mem.Equal(snap2.Mem) {
		t.Error("snapshot aliased live memory")
	}
}

func TestReplayEnvFeedsRecordedValues(t *testing.T) {
	prog := compile(t, `
int main() {
	write(read());
	write(rand() % 100);
	write(read());
	return 0;
}`)
	tr := &collectTracer{}
	m1 := vm.New(prog, vm.Config{Env: vm.NewNativeEnv([]int64{10, 20}, 77), Tracer: tr, MaxSteps: 10000})
	m1.Run()

	m2 := vm.New(prog, vm.Config{Env: vm.NewReplayEnv(tr.syscalls), MaxSteps: 10000})
	m2.Run()
	o1, o2 := m1.Output(), m2.Output()
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("replayed output differs: %v vs %v", o1, o2)
		}
	}
}

func TestThreadStacksDisjoint(t *testing.T) {
	prog := compile(t, `
int out[4];
int worker(int slot) {
	int deep[100];
	int i;
	for (i = 0; i < 100; i++) { deep[i] = slot * 1000 + i; }
	out[slot] = deep[99];
	return 0;
}
int main() {
	int t1 = spawn(worker, 1);
	int t2 = spawn(worker, 2);
	worker(0);
	join(t1);
	join(t2);
	write(out[0]); write(out[1]); write(out[2]);
	return 0;
}`)
	m := vm.New(prog, vm.Config{Sched: vm.NewRandomScheduler(9, 7), MaxSteps: 1_000_000})
	m.Run()
	out := m.Output()
	want := []int64{99, 1099, 2099}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("output %v, want %v", out, want)
		}
	}
}
