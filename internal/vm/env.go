package vm

import "repro/internal/isa"

// NativeEnv supplies syscall results during a "native" (original,
// un-replayed) execution: program input from a slice, pseudo-random words
// from a seeded generator, and a logical clock. From the program's point
// of view these are nondeterministic inputs, so the logger captures every
// result into the pinball.
type NativeEnv struct {
	Input []int64

	inputPos  int
	randState uint64
	clock     int64
}

// NewNativeEnv returns an environment with the given program input and
// random seed.
func NewNativeEnv(input []int64, seed int64) *NativeEnv {
	return &NativeEnv{
		Input:     input,
		randState: uint64(seed)*6364136223846793005 + 1442695040888963407,
	}
}

// EnvState is a resumable snapshot of a NativeEnv: the input cursor, the
// random-generator state and the logical clock. The flight recorder
// captures it at region entry so gap bridging can re-run the region with
// the environment answering exactly as it originally did.
type EnvState struct {
	InputPos  int
	RandState uint64
	Clock     int64
}

// State captures the environment's resumable state.
func (e *NativeEnv) State() EnvState {
	return EnvState{InputPos: e.inputPos, RandState: e.randState, Clock: e.clock}
}

// ResumeNativeEnv reconstructs an environment mid-stream from a captured
// state: input is the full original program input (the cursor in st picks
// up where the capture left off).
func ResumeNativeEnv(input []int64, st EnvState) *NativeEnv {
	return &NativeEnv{Input: input, inputPos: st.InputPos, randState: st.RandState, clock: st.Clock}
}

// Syscall implements SyscallSource.
func (e *NativeEnv) Syscall(tid int, num, arg int64) int64 {
	switch num {
	case isa.SysRead:
		if e.inputPos >= len(e.Input) {
			return -1 // EOF
		}
		v := e.Input[e.inputPos]
		e.inputPos++
		return v
	case isa.SysTime:
		e.clock++
		return e.clock
	case isa.SysRand:
		x := e.randState
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		e.randState = x
		return int64(x >> 1)
	}
	return 0
}

// ReplayEnv replays logged syscall results. Results are consumed in
// per-thread FIFO order, which is exactly the order they were produced in
// (a thread's syscalls are totally ordered by its own program order).
type ReplayEnv struct {
	perThread map[int][]int64
}

// NewReplayEnv builds a replay environment from a syscall log.
func NewReplayEnv(log []SyscallRecord) *ReplayEnv {
	return NewReplayEnvSkipping(log, nil)
}

// NewReplayEnvSkipping builds a replay environment positioned mid-log:
// skip[tid] nondeterministic results of each thread are dropped. Reverse
// debugging uses it to resume replay from a checkpoint.
func NewReplayEnvSkipping(log []SyscallRecord, skip map[int]int) *ReplayEnv {
	e := &ReplayEnv{perThread: make(map[int][]int64)}
	for _, r := range log {
		switch r.Num {
		case isa.SysRead, isa.SysTime, isa.SysRand:
			e.perThread[r.Tid] = append(e.perThread[r.Tid], r.Ret)
		}
	}
	for tid, n := range skip {
		q := e.perThread[tid]
		if n >= len(q) {
			e.perThread[tid] = nil
		} else {
			e.perThread[tid] = q[n:]
		}
	}
	return e
}

// Syscall implements SyscallSource.
func (e *ReplayEnv) Syscall(tid int, num, arg int64) int64 {
	q := e.perThread[tid]
	if len(q) == 0 {
		return 0 // replay ran past the log; benign for post-region steps
	}
	v := q[0]
	e.perThread[tid] = q[1:]
	return v
}
