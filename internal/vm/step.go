package vm

import "repro/internal/isa"

// get reads a register, with RZ hard-wired to zero.
func get(t *Thread, r isa.Reg) int64 {
	if r == isa.RZ {
		return 0
	}
	return t.Regs[r]
}

// set writes a register, discarding writes to RZ.
func set(t *Thread, r isa.Reg, v int64) {
	if r != isa.RZ {
		t.Regs[r] = v
	}
}

// step executes one instruction of t. It returns true if the thread
// blocked instead of executing (lock unavailable, join target alive); in
// that case no instruction was executed and no event emitted. Failures
// stop the machine via m.fail.
func (m *Machine) step(t *Thread) (blocked bool) {
	if t.PC < 0 || t.PC >= int64(len(m.Prog.Code)) {
		m.fail(t, t.Count, "pc %d outside code", t.PC)
		return false
	}
	in := m.Prog.Code[t.PC]
	idx := t.Count

	// Event skeleton; filled in by the opcode cases when tracing.
	ev := &m.ev
	if m.tracing {
		*ev = InstrEvent{Tid: t.ID, PC: t.PC, Idx: idx, Instr: in, EffAddr: -1}
	}

	nextPC := t.PC + 1

	switch in.Op {
	case isa.NOP:

	case isa.MOVI:
		set(t, in.Rd, in.Imm)

	case isa.MOV:
		set(t, in.Rd, get(t, in.Rs1))

	case isa.LOAD:
		addr := get(t, in.Rs1) + in.Imm
		if addr < 0 {
			m.fail(t, idx, "load from negative address %d", addr)
			return false
		}
		v := m.Mem.Read(addr)
		set(t, in.Rd, v)
		if m.tracing {
			ev.EffAddr = addr
			ev.MemVal = v
			m.trackAccess(t.ID, idx, addr, false)
		}

	case isa.STORE:
		addr := get(t, in.Rs1) + in.Imm
		if addr < 0 {
			m.fail(t, idx, "store to negative address %d", addr)
			return false
		}
		v := get(t, in.Rs2)
		m.Mem.Write(addr, v)
		if m.tracing {
			ev.EffAddr = addr
			ev.MemIsWrite = true
			ev.MemVal = v
			m.trackAccess(t.ID, idx, addr, true)
		}

	case isa.PUSH:
		sp := t.Regs[isa.SP] - 1
		if sp < StackBase+int64(t.ID)*StackWords {
			m.fail(t, idx, "stack overflow")
			return false
		}
		v := get(t, in.Rs1)
		m.Mem.Write(sp, v)
		t.Regs[isa.SP] = sp
		if m.tracing {
			ev.EffAddr = sp
			ev.MemIsWrite = true
			ev.MemVal = v
		}

	case isa.POP:
		sp := t.Regs[isa.SP]
		v := m.Mem.Read(sp)
		set(t, in.Rd, v)
		t.Regs[isa.SP] = sp + 1
		if m.tracing {
			ev.EffAddr = sp
			ev.MemVal = v
		}

	case isa.ADD:
		set(t, in.Rd, get(t, in.Rs1)+get(t, in.Rs2))
	case isa.SUB:
		set(t, in.Rd, get(t, in.Rs1)-get(t, in.Rs2))
	case isa.MUL:
		set(t, in.Rd, get(t, in.Rs1)*get(t, in.Rs2))
	case isa.DIV:
		d := get(t, in.Rs2)
		if d == 0 {
			m.fail(t, idx, "division by zero")
			return false
		}
		set(t, in.Rd, get(t, in.Rs1)/d)
	case isa.MOD:
		d := get(t, in.Rs2)
		if d == 0 {
			m.fail(t, idx, "modulo by zero")
			return false
		}
		set(t, in.Rd, get(t, in.Rs1)%d)
	case isa.AND:
		set(t, in.Rd, get(t, in.Rs1)&get(t, in.Rs2))
	case isa.OR:
		set(t, in.Rd, get(t, in.Rs1)|get(t, in.Rs2))
	case isa.XOR:
		set(t, in.Rd, get(t, in.Rs1)^get(t, in.Rs2))
	case isa.SHL:
		set(t, in.Rd, get(t, in.Rs1)<<uint64(get(t, in.Rs2)&63))
	case isa.SHR:
		set(t, in.Rd, int64(uint64(get(t, in.Rs1))>>uint64(get(t, in.Rs2)&63)))
	case isa.ADDI:
		set(t, in.Rd, get(t, in.Rs1)+in.Imm)
	case isa.MULI:
		set(t, in.Rd, get(t, in.Rs1)*in.Imm)

	case isa.CMPEQ:
		set(t, in.Rd, b2i(get(t, in.Rs1) == get(t, in.Rs2)))
	case isa.CMPNE:
		set(t, in.Rd, b2i(get(t, in.Rs1) != get(t, in.Rs2)))
	case isa.CMPLT:
		set(t, in.Rd, b2i(get(t, in.Rs1) < get(t, in.Rs2)))
	case isa.CMPLE:
		set(t, in.Rd, b2i(get(t, in.Rs1) <= get(t, in.Rs2)))

	case isa.BR:
		if get(t, in.Rs1) != 0 {
			nextPC = in.Imm
			if m.tracing {
				ev.Taken = true
			}
		}
	case isa.BRZ:
		if get(t, in.Rs1) == 0 {
			nextPC = in.Imm
			if m.tracing {
				ev.Taken = true
			}
		}
	case isa.JMP:
		nextPC = in.Imm
	case isa.JMPI:
		nextPC = get(t, in.Rs1)
		if nextPC < 0 || nextPC >= int64(len(m.Prog.Code)) {
			m.fail(t, idx, "indirect jump to %d outside code", nextPC)
			return false
		}

	case isa.CALL, isa.CALLI:
		target := in.Imm
		if in.Op == isa.CALLI {
			target = get(t, in.Rs1)
			if target < 0 || target >= int64(len(m.Prog.Code)) {
				m.fail(t, idx, "indirect call to %d outside code", target)
				return false
			}
		}
		sp := t.Regs[isa.SP] - 1
		if sp < StackBase+int64(t.ID)*StackWords {
			m.fail(t, idx, "stack overflow")
			return false
		}
		m.Mem.Write(sp, t.PC+1)
		t.Regs[isa.SP] = sp
		nextPC = target
		if m.tracing {
			ev.EffAddr = sp
			ev.MemIsWrite = true
			ev.MemVal = t.PC + 1
		}

	case isa.RET:
		sp := t.Regs[isa.SP]
		ra := m.Mem.Read(sp)
		t.Regs[isa.SP] = sp + 1
		if m.tracing {
			ev.EffAddr = sp
			ev.MemVal = ra
		}
		if ra == exitSentinel {
			// Thread exit: the RET executes, then the thread is done.
			t.Count++
			m.recordQuantum(t.ID)
			if m.tracing {
				ev.NextPC = -1
				m.tracer.OnInstr(ev)
			}
			m.exitThread(t)
			return false
		}
		if ra < 0 || ra >= int64(len(m.Prog.Code)) {
			m.fail(t, idx, "return to bad address %d", ra)
			return false
		}
		nextPC = ra

	case isa.SPAWN:
		if len(m.Threads) >= MaxThreads {
			m.fail(t, idx, "too many threads")
			return false
		}
		nt := m.newThread(in.Imm, get(t, in.Rs1))
		set(t, in.Rd, int64(nt.ID))
		if m.tracing {
			ev.Aux = int64(nt.ID)
		}
		m.needSched = true

	case isa.JOIN:
		target := get(t, in.Rs1)
		if target < 0 || target >= int64(len(m.Threads)) {
			m.fail(t, idx, "join of invalid thread %d", target)
			return false
		}
		if m.Threads[target].Status != Exited {
			t.Status = BlockedJoin
			t.WaitTid = int(target)
			m.joinWaiters[int(target)] = append(m.joinWaiters[int(target)], t.ID)
			return true
		}
		if m.tracing {
			ev.Aux = target
		}

	case isa.LOCK:
		addr := get(t, in.Rs1)
		if addr < 0 {
			m.fail(t, idx, "lock at negative address %d", addr)
			return false
		}
		held := m.Mem.Read(addr)
		if held != 0 {
			t.Status = BlockedLock
			t.WaitAddr = addr
			m.lockWaiters[addr] = append(m.lockWaiters[addr], t.ID)
			return true
		}
		m.Mem.Write(addr, int64(t.ID)+1)
		if m.tracing {
			ev.EffAddr = addr
			ev.MemIsWrite = true
			ev.MemAlsoRead = true
			ev.MemVal = int64(t.ID) + 1
			m.trackAccess(t.ID, idx, addr, true)
		}

	case isa.UNLOCK:
		addr := get(t, in.Rs1)
		if addr < 0 {
			m.fail(t, idx, "unlock at negative address %d", addr)
			return false
		}
		if m.Mem.Read(addr) != int64(t.ID)+1 {
			m.fail(t, idx, "unlock of lock not held (cell %d)", addr)
			return false
		}
		m.Mem.Write(addr, 0)
		m.wakeLockWaiters(addr)
		if m.tracing {
			ev.EffAddr = addr
			ev.MemIsWrite = true
			ev.MemAlsoRead = true
			ev.MemVal = 0
			m.trackAccess(t.ID, idx, addr, true)
		}

	case isa.WAIT:
		cvAddr := get(t, in.Rs1)
		mAddr := get(t, in.Rs2)
		if cvAddr < 0 || mAddr < 0 {
			m.fail(t, idx, "wait with negative address")
			return false
		}
		if m.Mem.Read(mAddr) != int64(t.ID)+1 {
			m.fail(t, idx, "wait without holding the mutex (cell %d)", mAddr)
			return false
		}
		// Atomically release the mutex and join the condvar's FIFO; the
		// compiler places a LOCK on the same mutex right after this
		// instruction, so wakeup reacquires before proceeding.
		m.Mem.Write(mAddr, 0)
		m.wakeLockWaiters(mAddr)
		t.PC = t.PC + 1
		t.Count++
		m.recordQuantum(t.ID)
		if m.tracing {
			ev.EffAddr = mAddr
			ev.MemIsWrite = true
			ev.MemAlsoRead = true
			ev.MemVal = 0
			ev.NextPC = t.PC
			ev.Aux = cvAddr
			m.trackAccess(t.ID, idx, mAddr, true)
			m.tracer.OnInstr(ev)
		}
		m.waitTicket++
		t.WaitTicket = m.waitTicket
		t.Status = BlockedCond
		t.WaitAddr = cvAddr
		m.condWaiters[cvAddr] = append(m.condWaiters[cvAddr], t.ID)
		m.needSched = true
		return false

	case isa.SIGNAL:
		cvAddr := get(t, in.Rs1)
		if cvAddr < 0 {
			m.fail(t, idx, "signal at negative address %d", cvAddr)
			return false
		}
		woken := int64(-1)
		if q := m.condWaiters[cvAddr]; len(q) > 0 {
			w := q[0]
			if len(q) == 1 {
				delete(m.condWaiters, cvAddr)
			} else {
				m.condWaiters[cvAddr] = q[1:]
			}
			m.Threads[w].Status = Runnable
			woken = int64(w)
		}
		if m.tracing {
			ev.Aux = woken
			if woken >= 0 {
				// Causality: the signal happens before everything the
				// woken thread does next.
				m.tracer.OnOrderEdge(OrderEdge{
					FromTid: t.ID, FromIdx: idx,
					ToTid: int(woken), ToIdx: m.Threads[woken].Count,
					Addr: cvAddr,
				})
			}
		}

	case isa.SYSCALL:
		ret := m.syscall(t, in.Imm, get(t, in.Rs1))
		if m.stopped != StopNone {
			return false
		}
		set(t, in.Rd, ret)
		if m.tracing {
			m.tracer.OnSyscall(SyscallRecord{Tid: t.ID, Num: in.Imm, Arg: get(t, in.Rs1), Ret: ret})
		}

	case isa.ASSERT:
		if get(t, in.Rs1) == 0 {
			// The assert executes (so the slice criterion exists in the
			// trace), then the machine stops with the failure.
			t.Count++
			m.recordQuantum(t.ID)
			if m.tracing {
				ev.NextPC = t.PC + 1
				m.tracer.OnInstr(ev)
			}
			m.fail(t, idx, "assertion failure at %s", m.Prog.SourceOf(t.PC))
			return false
		}

	case isa.HALT:
		t.Count++
		m.recordQuantum(t.ID)
		if m.tracing {
			ev.NextPC = -1
			m.tracer.OnInstr(ev)
		}
		m.stopped = StopHalt
		return false

	default:
		m.fail(t, idx, "invalid opcode %d", in.Op)
		return false
	}

	t.PC = nextPC
	t.Count++
	m.recordQuantum(t.ID)
	if m.tracing {
		ev.NextPC = nextPC
		m.tracer.OnInstr(ev)
	}
	return false
}

// syscall executes one system call for t. Deterministic calls are handled
// here; nondeterministic ones are delegated to the configured environment.
func (m *Machine) syscall(t *Thread, num, arg int64) int64 {
	switch num {
	case isa.SysWrite:
		m.output = append(m.output, arg)
		return arg
	case isa.SysAlloc:
		if arg < 0 {
			m.fail(t, t.Count, "alloc of negative size %d", arg)
			return 0
		}
		base := m.heapNext
		m.heapNext += arg
		if m.heapNext > StackBase {
			m.fail(t, t.Count, "heap exhausted")
			return 0
		}
		return base
	case isa.SysThreadID:
		return int64(t.ID)
	case isa.SysYield:
		m.yieldReq = true
		return 0
	case isa.SysRead, isa.SysTime, isa.SysRand:
		if m.env == nil {
			return 0
		}
		return m.env.Syscall(t.ID, num, arg)
	}
	m.fail(t, t.Count, "bad syscall %d", num)
	return 0
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
