package vm_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/vm"
)

const spinSrc = `
int main() {
	int i;
	int acc = 0;
	for (i = 0; i < 1000000; i++) {
		acc = acc + i;
	}
	write(acc);
	return 0;
}`

func TestInstructionBudgetStops(t *testing.T) {
	prog := compile(t, spinSrc)
	m := vm.New(prog, vm.Config{MaxSteps: 100_000_000})
	m.SetLimits(vm.Limits{Steps: 500})
	m.Run()
	if m.Stopped() != vm.StopBudget {
		t.Fatalf("stop = %v, want budget", m.Stopped())
	}
	if !m.Stopped().LimitStop() {
		t.Error("StopBudget.LimitStop() = false")
	}
	// Limits are checked after each executed instruction, so the machine
	// runs exactly the budget.
	if m.Steps() != 500 {
		t.Errorf("steps = %d, want 500", m.Steps())
	}
}

func TestBudgetIsRelative(t *testing.T) {
	prog := compile(t, spinSrc)
	m := vm.New(prog, vm.Config{MaxSteps: 100_000_000})
	for i := 0; i < 300; i++ {
		if !m.StepOne() {
			t.Fatal("program stopped during warm-up")
		}
	}
	m.SetLimits(vm.Limits{Steps: 200})
	m.Run()
	if m.Stopped() != vm.StopBudget {
		t.Fatalf("stop = %v, want budget", m.Stopped())
	}
	if m.Steps() != 500 {
		t.Errorf("steps = %d, want 300 warm-up + 200 budget", m.Steps())
	}
}

func TestExpiredDeadlineStops(t *testing.T) {
	prog := compile(t, spinSrc)
	m := vm.New(prog, vm.Config{MaxSteps: 100_000_000})
	m.SetLimits(vm.Limits{Deadline: time.Now().Add(-time.Second)})
	m.Run()
	if m.Stopped() != vm.StopDeadline {
		t.Fatalf("stop = %v, want deadline", m.Stopped())
	}
	if m.Steps() != 1 {
		t.Errorf("steps = %d, want 1 (deadline checked after the first instruction)", m.Steps())
	}
}

func TestCancelledContextStops(t *testing.T) {
	prog := compile(t, spinSrc)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := vm.New(prog, vm.Config{MaxSteps: 100_000_000})
	m.SetLimits(vm.Limits{Ctx: ctx})
	m.Run()
	if m.Stopped() != vm.StopCancelled {
		t.Fatalf("stop = %v, want cancelled", m.Stopped())
	}
}

const pageHogSrc = `
int big[131072];
int main() {
	int i;
	for (i = 0; i < 8000; i++) {
		big[i * 16] = i;
	}
	write(big[0]);
	return 0;
}`

func TestMemoryCapStops(t *testing.T) {
	prog := compile(t, pageHogSrc)
	m := vm.New(prog, vm.Config{MaxSteps: 100_000_000})
	m.SetLimits(vm.Limits{MaxPages: 4})
	m.Run()
	if m.Stopped() != vm.StopMemLimit {
		t.Fatalf("stop = %v, want memory limit (pages = %d)", m.Stopped(), m.Mem.Pages())
	}
}

func TestZeroLimitsAreUnbounded(t *testing.T) {
	prog := compile(t, `int main() { write(7); return 0; }`)
	m := vm.New(prog, vm.Config{MaxSteps: 1_000_000})
	m.SetLimits(vm.Timeout(0, 0)) // both zero: no bounds
	m.Run()
	if m.Stopped() != vm.StopExit {
		t.Fatalf("stop = %v, want exit", m.Stopped())
	}
	if out := m.Output(); len(out) != 1 || out[0] != 7 {
		t.Fatalf("output = %v", out)
	}
}

func TestLimitStopClassification(t *testing.T) {
	limit := []vm.StopReason{vm.StopBudget, vm.StopDeadline, vm.StopMemLimit, vm.StopCancelled}
	for _, s := range limit {
		if !s.LimitStop() {
			t.Errorf("%v.LimitStop() = false", s)
		}
		if s.String() == "" || s.String() == "unknown" {
			t.Errorf("%v has no String", s)
		}
	}
	for _, s := range []vm.StopReason{vm.StopNone, vm.StopExit, vm.StopFailure, vm.StopMaxSteps, vm.StopDeadlock} {
		if s.LimitStop() {
			t.Errorf("%v.LimitStop() = true", s)
		}
	}
}

// edgeCounter counts order edges and instructions.
type edgeCounter struct {
	vm.NopTracer
	instrs int64
	edges  int64
}

func (c *edgeCounter) OnInstr(*vm.InstrEvent)   { c.instrs++ }
func (c *edgeCounter) OnOrderEdge(vm.OrderEdge) { c.edges++ }

func TestSetOrderTrackingGate(t *testing.T) {
	prog := compile(t, racySrc)

	on := &edgeCounter{}
	m1 := vm.New(prog, vm.Config{Sched: vm.NewRandomScheduler(5, 19), Tracer: on, MaxSteps: 10_000_000})
	m1.Run()
	if on.edges == 0 {
		t.Fatal("expected order edges with tracking on")
	}

	off := &edgeCounter{}
	m2 := vm.New(prog, vm.Config{Sched: vm.NewRandomScheduler(5, 19), Tracer: off, MaxSteps: 10_000_000})
	m2.SetOrderTracking(false)
	m2.Run()
	if off.edges != 0 {
		t.Fatalf("got %d order edges with tracking off", off.edges)
	}
	// The execution itself is unaffected: same instruction stream.
	if on.instrs != off.instrs {
		t.Fatalf("instruction counts differ: %d vs %d", on.instrs, off.instrs)
	}
}
