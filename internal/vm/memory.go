package vm

// Paged, word-addressed shared memory. Pages materialise on first touch
// and read as zero, so a fresh Memory is ready to use.

const (
	pageShift = 12
	pageWords = 1 << pageShift
	pageMask  = pageWords - 1
)

type page [pageWords]int64

// Memory is the flat word-addressed address space shared by all threads of
// a machine.
type Memory struct {
	pages map[int64]*page
}

// NewMemory returns an empty (all-zero) memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[int64]*page)}
}

// Read returns the word at addr. Unmapped memory reads as zero.
func (m *Memory) Read(addr int64) int64 {
	p, ok := m.pages[addr>>pageShift]
	if !ok {
		return 0
	}
	return p[addr&pageMask]
}

// Pages returns the number of resident (touched) pages; Limits.MaxPages
// is enforced against this count.
func (m *Memory) Pages() int { return len(m.pages) }

// Write stores v at addr, materialising the page if needed.
func (m *Memory) Write(addr int64, v int64) {
	pn := addr >> pageShift
	p, ok := m.pages[pn]
	if !ok {
		p = new(page)
		m.pages[pn] = p
	}
	p[addr&pageMask] = v
}

// Image is a compact serialisable snapshot of memory: page number to page
// contents. It is the form stored inside pinballs.
type Image map[int64][]int64

// Snapshot deep-copies the touched pages into an Image.
func (m *Memory) Snapshot() Image {
	img := make(Image, len(m.pages))
	for pn, p := range m.pages {
		cp := make([]int64, pageWords)
		copy(cp, p[:])
		img[pn] = cp
	}
	return img
}

// Restore replaces the memory contents with the image.
func (m *Memory) Restore(img Image) {
	m.pages = make(map[int64]*page, len(img))
	for pn, words := range img {
		p := new(page)
		copy(p[:], words)
		m.pages[pn] = p
	}
}

// Equal reports whether two images describe identical memory contents,
// treating absent pages as zero.
func (a Image) Equal(b Image) bool {
	zero := func(ws []int64) bool {
		for _, w := range ws {
			if w != 0 {
				return false
			}
		}
		return true
	}
	for pn, ws := range a {
		bw, ok := b[pn]
		if !ok {
			if !zero(ws) {
				return false
			}
			continue
		}
		for i := range ws {
			if ws[i] != bw[i] {
				return false
			}
		}
	}
	for pn, ws := range b {
		if _, ok := a[pn]; !ok && !zero(ws) {
			return false
		}
	}
	return true
}
