package vm

import (
	"context"
	"time"
)

// Limits bounds an execution so that a malformed or tampered pinball can
// never wedge a tool: an instruction budget, a wall-clock deadline, a
// resident-memory cap and an optional cancellation context. The zero
// value imposes no bounds. Limits are checked from the stepping loop; the
// budget every instruction, the clock/context/memory ones every
// slowCheckStride instructions to keep the hot path cheap.
type Limits struct {
	// Steps is the instruction budget, counted from the moment the
	// limits are applied (0 = unlimited).
	Steps int64
	// Deadline is the wall-clock cutoff (zero = none).
	Deadline time.Time
	// MaxPages caps the machine's resident memory in pages (0 = none).
	MaxPages int
	// Ctx cancels the execution when done (nil = none).
	Ctx context.Context
}

// Timeout is a convenience constructor: an instruction budget plus a
// deadline d from now. Either argument may be zero for "unbounded".
func Timeout(steps int64, d time.Duration) Limits {
	l := Limits{Steps: steps}
	if d > 0 {
		l.Deadline = time.Now().Add(d)
	}
	return l
}

// active reports whether any bound is set.
func (l Limits) active() bool {
	return l.Steps > 0 || !l.Deadline.IsZero() || l.MaxPages > 0 || l.Ctx != nil
}

// slowCheckStride is how many instructions run between wall-clock,
// context and memory-cap checks.
const slowCheckStride = 4096

// SetLimits applies (or, with the zero value, clears) execution bounds.
// The instruction budget is relative to the machine's current step count,
// so replay tools can bound just the replayed region.
func (m *Machine) SetLimits(l Limits) {
	m.limits = l
	m.limitsOn = l.active()
	m.budgetEnd = 0
	if l.Steps > 0 {
		m.budgetEnd = m.steps + l.Steps
	}
	// First executed instruction performs a slow check, so an
	// already-expired deadline or cancelled context stops immediately.
	m.nextSlowCheck = m.steps
}

// Limits returns the currently applied execution bounds.
func (m *Machine) Limits() Limits { return m.limits }

// checkLimits enforces the applied bounds; called once per executed
// instruction while any bound is set.
func (m *Machine) checkLimits() {
	if m.budgetEnd > 0 && m.steps >= m.budgetEnd {
		m.stopped = StopBudget
		return
	}
	if m.steps < m.nextSlowCheck {
		return
	}
	m.nextSlowCheck = m.steps + slowCheckStride
	if !m.limits.Deadline.IsZero() && time.Now().After(m.limits.Deadline) {
		m.stopped = StopDeadline
		return
	}
	if m.limits.Ctx != nil {
		select {
		case <-m.limits.Ctx.Done():
			m.stopped = StopCancelled
			return
		default:
		}
	}
	if m.limits.MaxPages > 0 && m.Mem.Pages() > m.limits.MaxPages {
		m.stopped = StopMemLimit
	}
}
