package vm_test

import (
	"testing"

	"repro/internal/pinplay"
	"repro/internal/vm"
)

// producerConsumerSrc is the canonical condvar pattern: a bounded queue
// with wait/signal in both directions.
const producerConsumerSrc = `
int mtx;
int notEmpty;
int notFull;
int queue[4];
int count;
int produced;
int consumed;
int items;
int producer(int n) {
	int i;
	for (i = 0; i < n; i++) {
		lock(&mtx);
		while (count == 4) {
			wait(&notFull, &mtx);
		}
		queue[count] = i + 1;
		count = count + 1;
		produced = produced + i + 1;
		signal(&notEmpty);
		unlock(&mtx);
	}
	return 0;
}
int consumer(int n) {
	int i;
	for (i = 0; i < n; i++) {
		lock(&mtx);
		while (count == 0) {
			wait(&notEmpty, &mtx);
		}
		count = count - 1;
		consumed = consumed + queue[count];
		signal(&notFull);
		unlock(&mtx);
	}
	return 0;
}
int main() {
	items = read();
	int p = spawn(producer, items);
	int c = spawn(consumer, items);
	join(p);
	join(c);
	assert(count == 0);
	write(produced);
	write(consumed);
	return 0;
}`

func TestCondVarProducerConsumer(t *testing.T) {
	prog := compile(t, producerConsumerSrc)
	for seed := int64(1); seed <= 20; seed++ {
		m := vm.New(prog, vm.Config{
			Sched:    vm.NewRandomScheduler(seed, 7),
			Env:      vm.NewNativeEnv([]int64{30}, seed),
			MaxSteps: 10_000_000,
		})
		if got := m.Run(); got != vm.StopExit {
			t.Fatalf("seed %d: stop = %v (failure: %v)", seed, got, m.Failure())
		}
		out := m.Output()
		// produced == consumed == sum 1..30 regardless of interleaving.
		if len(out) != 2 || out[0] != 465 || out[1] != 465 {
			t.Fatalf("seed %d: output = %v, want [465 465]", seed, out)
		}
	}
}

func TestCondVarReplayDeterminism(t *testing.T) {
	prog := compile(t, producerConsumerSrc)
	pb, err := pinplay.Log(prog, pinplay.LogConfig{Seed: 9, MeanQuantum: 5, Input: []int64{25}}, pinplay.RegionSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if err := pinplay.CheckReplayDeterminism(prog, pb); err != nil {
		t.Fatal(err)
	}
	m, err := pinplay.Replay(prog, pb, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := m.Output()
	if len(out) != 2 || out[0] != 325 || out[1] != 325 {
		t.Fatalf("replayed output = %v", out)
	}
}

func TestCondVarSnapshotRestoreMidWait(t *testing.T) {
	// Snapshot while threads are blocked on the condvar and restore: the
	// FIFO order must survive.
	prog := compile(t, producerConsumerSrc)
	m := vm.New(prog, vm.Config{
		Sched:    vm.NewRandomScheduler(3, 11),
		Env:      vm.NewNativeEnv([]int64{40}, 3),
		MaxSteps: 10_000_000,
	})
	// Run until some thread is blocked on a condvar.
	snapAt := -1
	for i := 0; i < 1_000_000 && m.StepOne(); i++ {
		for _, th := range m.Threads {
			if th.Status == vm.BlockedCond {
				snapAt = i
			}
		}
		if snapAt >= 0 {
			break
		}
	}
	if snapAt < 0 {
		t.Skip("no condvar block observed under this seed")
	}
	snap := m.Snapshot()
	m.ResetQuanta()
	for m.StepOne() {
	}
	want := append([]int64(nil), m.Output()...)
	suffix := m.Quanta()

	m2 := vm.NewFromState(prog, snap, vm.Config{
		Sched: vm.NewReplayScheduler(suffix),
		Env:   vm.NewNativeEnv(nil, 0), // inputs already consumed pre-snapshot
	})
	m2.Run()
	got := m2.Output()
	if len(got) != len(want) {
		t.Fatalf("outputs: %v vs %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output[%d]: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestWaitWithoutMutexFails(t *testing.T) {
	prog := compile(t, `
int cv;
int m;
int main() { wait(&cv, &m); return 0; }`)
	mach := vm.New(prog, vm.Config{MaxSteps: 1000})
	if mach.Run() != vm.StopFailure {
		t.Fatalf("stop = %v, want failure", mach.Stopped())
	}
}

func TestSignalNoWaitersIsNoop(t *testing.T) {
	prog := compile(t, `
int cv;
int main() { signal(&cv); write(1); return 0; }`)
	m := vm.New(prog, vm.Config{MaxSteps: 1000})
	if m.Run() != vm.StopExit {
		t.Fatalf("stop = %v", m.Stopped())
	}
}

func TestLostWakeupDeadlocks(t *testing.T) {
	// A waiter that starts waiting after the only signal was sent blocks
	// forever: the machine must report deadlock, not hang.
	prog := compile(t, `
int cv;
int m;
int waiter(int u) {
	lock(&m);
	wait(&cv, &m);
	unlock(&m);
	return 0;
}
int main() {
	signal(&cv);
	int t = spawn(waiter, 0);
	join(t);
	return 0;
}`)
	mach := vm.New(prog, vm.Config{MaxSteps: 1_000_000})
	if got := mach.Run(); got != vm.StopDeadlock {
		t.Fatalf("stop = %v, want deadlock", got)
	}
}
