package vm

import (
	"sort"

	"repro/internal/isa"
)

// ThreadState is the serialisable state of one thread, captured at a
// region boundary and stored inside pinballs.
type ThreadState struct {
	ID         int
	Regs       [isa.NumRegs]int64
	PC         int64
	Status     ThreadStatus
	Count      int64
	WaitAddr   int64
	WaitTid    int
	WaitTicket int64
	EntryPC    int64
}

// MachineState is a full architectural snapshot: memory image, all thread
// states, the allocator cursor and the output written so far. It is what
// the PinPlay logger captures at region entry ("initial architecture
// state").
type MachineState struct {
	Mem        Image
	Threads    []ThreadState
	HeapNext   int64
	Output     []int64
	Steps      int64
	WaitTicket int64
}

// Snapshot captures the machine's current architectural state.
func (m *Machine) Snapshot() *MachineState {
	st := &MachineState{
		Mem:        m.Mem.Snapshot(),
		HeapNext:   m.heapNext,
		Output:     append([]int64(nil), m.output...),
		Steps:      m.steps,
		WaitTicket: m.waitTicket,
	}
	for _, t := range m.Threads {
		st.Threads = append(st.Threads, ThreadState{
			ID: t.ID, Regs: t.Regs, PC: t.PC, Status: t.Status,
			Count: t.Count, WaitAddr: t.WaitAddr, WaitTid: t.WaitTid,
			WaitTicket: t.WaitTicket, EntryPC: t.EntryPC,
		})
	}
	return st
}

// Restore replaces the machine's architectural state with st and rebuilds
// the waiter queues from the thread statuses. The scheduler is forced to
// make a fresh decision; recorded quanta and shared-access tracking are
// reset.
func (m *Machine) Restore(st *MachineState) {
	m.Mem.Restore(st.Mem)
	m.heapNext = st.HeapNext
	m.output = append([]int64(nil), st.Output...)
	m.steps = st.Steps
	m.Threads = m.Threads[:0]
	m.lockWaiters = make(map[int64][]int)
	m.joinWaiters = make(map[int][]int)
	m.condWaiters = make(map[int64][]int)
	m.waitTicket = st.WaitTicket
	var condBlocked []*Thread
	for _, ts := range st.Threads {
		t := &Thread{
			ID: ts.ID, Regs: ts.Regs, PC: ts.PC, Status: ts.Status,
			Count: ts.Count, WaitAddr: ts.WaitAddr, WaitTid: ts.WaitTid,
			WaitTicket: ts.WaitTicket, EntryPC: ts.EntryPC,
		}
		m.Threads = append(m.Threads, t)
		switch t.Status {
		case BlockedLock:
			m.lockWaiters[t.WaitAddr] = append(m.lockWaiters[t.WaitAddr], t.ID)
		case BlockedJoin:
			m.joinWaiters[t.WaitTid] = append(m.joinWaiters[t.WaitTid], t.ID)
		case BlockedCond:
			condBlocked = append(condBlocked, t)
		}
	}
	// Rebuild condition-variable FIFOs in wait order.
	sort.Slice(condBlocked, func(i, j int) bool {
		return condBlocked[i].WaitTicket < condBlocked[j].WaitTicket
	})
	for _, t := range condBlocked {
		m.condWaiters[t.WaitAddr] = append(m.condWaiters[t.WaitAddr], t.ID)
	}
	m.quanta = nil
	m.curLeft = 0
	m.needSched = true
	m.stopped = StopNone
	m.failure = nil
	m.lastAccess = make(map[int64]*accessState)
}

// NewFromState creates a machine for prog starting at the captured state
// rather than at program entry — how the replayer "runs off a pinball".
func NewFromState(prog *isa.Program, st *MachineState, cfg Config) *Machine {
	m := New(prog, cfg)
	m.Restore(st)
	return m
}
