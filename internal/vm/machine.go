// Package vm implements the multi-threaded machine that executes
// isa.Programs, playing the role Pin-instrumented native execution plays
// in the paper: every instruction's register/memory def-use, control
// transfers, shared-memory access order and system-call results are
// observable through per-instruction analysis callbacks (Tracer), and the
// executed thread interleaving is recorded as run-length quanta that a
// ReplayScheduler can reproduce exactly.
package vm

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// Address-space layout (word addresses).
const (
	// HeapBase is where SysAlloc starts handing out memory. Globals live
	// in [0, HeapBase).
	HeapBase int64 = 1 << 20
	// StackBase is the bottom of the stack area. Thread t's stack
	// occupies [StackBase + t*StackWords, StackBase + (t+1)*StackWords).
	// Stacks are thread-private by construction, so shared-memory order
	// tracking ignores addresses at or above StackBase.
	StackBase int64 = 1 << 28
	// StackWords is the per-thread stack size.
	StackWords int64 = 1 << 16
	// MaxThreads bounds thread creation.
	MaxThreads = 256
)

// exitSentinel is the pseudo return address at the base of every thread
// stack; RET-ing to it exits the thread.
const exitSentinel int64 = -1

// ThreadStatus is a thread's scheduling state.
type ThreadStatus uint8

// Thread states.
const (
	Runnable ThreadStatus = iota
	BlockedLock
	BlockedJoin
	BlockedCond
	Exited
)

func (s ThreadStatus) String() string {
	switch s {
	case Runnable:
		return "runnable"
	case BlockedLock:
		return "blocked(lock)"
	case BlockedJoin:
		return "blocked(join)"
	case BlockedCond:
		return "blocked(cond)"
	case Exited:
		return "exited"
	}
	return "?"
}

// Thread is one machine thread: a register file, a pc and scheduling
// state. Its stack lives in the shared Memory.
type Thread struct {
	ID     int
	Regs   [isa.NumRegs]int64
	PC     int64
	Status ThreadStatus
	// Count is the number of instructions this thread has executed; the
	// per-thread dynamic instruction index of the next instruction.
	Count int64
	// WaitAddr is the lock cell a BlockedLock thread waits on.
	WaitAddr int64
	// WaitTid is the thread a BlockedJoin thread waits for.
	WaitTid int
	// WaitTicket orders BlockedCond threads FIFO per condition variable.
	WaitTicket int64
	// EntryPC is where the thread started (for diagnostics).
	EntryPC int64
}

// Failure describes an execution fault: assertion failure (the bug
// "symptom" in the paper's terminology), division by zero, bad memory
// access, unlock of an un-held lock, or stack overflow.
type Failure struct {
	Tid    int
	PC     int64
	Idx    int64 // per-thread index of the faulting instruction
	Reason string
}

func (f *Failure) Error() string {
	return fmt.Sprintf("thread %d at pc %d: %s", f.Tid, f.PC, f.Reason)
}

// StopReason says why a machine is no longer running.
type StopReason int

// Stop reasons. StopNone means the machine can still execute.
const (
	StopNone StopReason = iota
	StopHalt            // HALT executed
	StopExit            // every thread exited
	StopFailure
	StopDeadlock
	StopMaxSteps
	StopBudget    // Limits.Steps instruction budget exhausted
	StopDeadline  // Limits.Deadline wall-clock cutoff passed
	StopMemLimit  // Limits.MaxPages resident-memory cap exceeded
	StopCancelled // Limits.Ctx cancelled
)

func (s StopReason) String() string {
	switch s {
	case StopNone:
		return "running"
	case StopHalt:
		return "halt"
	case StopExit:
		return "exit"
	case StopFailure:
		return "failure"
	case StopDeadlock:
		return "deadlock"
	case StopMaxSteps:
		return "max-steps"
	case StopBudget:
		return "budget"
	case StopDeadline:
		return "deadline"
	case StopMemLimit:
		return "mem-limit"
	case StopCancelled:
		return "cancelled"
	}
	return "?"
}

// LimitStop reports whether s was caused by an execution bound (budget,
// deadline, memory cap or cancellation) rather than by the program.
func (s StopReason) LimitStop() bool {
	switch s {
	case StopBudget, StopDeadline, StopMemLimit, StopCancelled:
		return true
	}
	return false
}

// SyscallSource supplies results for the nondeterministic system calls
// (SysRead, SysTime, SysRand). The machine handles the deterministic ones
// (write, alloc, thread-id, yield) itself.
type SyscallSource interface {
	Syscall(tid int, num, arg int64) int64
}

// Config configures a machine.
type Config struct {
	Sched    Scheduler
	Env      SyscallSource
	Tracer   Tracer
	MaxSteps int64 // 0 means no limit
}

// Machine executes a program. Create with New, drive with StepOne or Run.
type Machine struct {
	Prog    *isa.Program
	Mem     *Memory
	Threads []*Thread

	sched    Scheduler
	env      SyscallSource
	tracer   Tracer
	tracing  bool
	maxSteps int64

	// Execution bounds (SetLimits) and shared-access order gating.
	limits        Limits
	limitsOn      bool
	budgetEnd     int64
	nextSlowCheck int64
	noOrderTrack  bool

	heapNext int64
	output   []int64
	steps    int64

	// Scheduling state.
	curTid      int
	curLeft     int64
	needSched   bool
	runnableBuf []int

	// Executed schedule, run-length encoded. ResetQuanta starts a fresh
	// recording (used by the logger at region entry).
	quanta []Quantum

	lockWaiters map[int64][]int
	joinWaiters map[int][]int
	condWaiters map[int64][]int
	waitTicket  int64

	// Shared-memory access-order tracking (active while tracing).
	lastAccess map[int64]*accessState

	stopped StopReason
	failure *Failure

	ev       InstrEvent
	scratch  []isa.Reg
	yieldReq bool
}

type reader struct {
	tid int
	idx int64
}

type accessState struct {
	hasW    bool
	wTid    int
	wIdx    int64
	readers []reader
}

// New creates a machine for prog. The program's global data initialisers
// are applied and the main thread is created at the entry pc.
func New(prog *isa.Program, cfg Config) *Machine {
	if cfg.Sched == nil {
		cfg.Sched = NewRandomScheduler(1, 1000)
	}
	m := &Machine{
		Prog:        prog,
		Mem:         NewMemory(),
		sched:       cfg.Sched,
		env:         cfg.Env,
		tracer:      cfg.Tracer,
		tracing:     cfg.Tracer != nil,
		maxSteps:    cfg.MaxSteps,
		heapNext:    HeapBase,
		needSched:   true,
		lockWaiters: make(map[int64][]int),
		joinWaiters: make(map[int][]int),
		condWaiters: make(map[int64][]int),
		lastAccess:  make(map[int64]*accessState),
	}
	for _, d := range prog.Data {
		m.Mem.Write(d.Addr, d.Val)
	}
	m.newThread(prog.EntryPC, 0)
	return m
}

// SetTracer replaces the machine's tracer; nil disables tracing.
func (m *Machine) SetTracer(t Tracer) {
	m.tracer = t
	m.tracing = t != nil
}

// SetScheduler replaces the scheduler and forces a rescheduling decision
// before the next instruction.
func (m *Machine) SetScheduler(s Scheduler) {
	m.sched = s
	m.needSched = true
}

// SetEnv replaces the syscall source.
func (m *Machine) SetEnv(e SyscallSource) { m.env = e }

// SetOrderTracking enables or disables shared-memory access-order
// tracking while a tracer is attached. Replay-time observers that do not
// consume order edges (e.g. the checkpoint validator) disable it to avoid
// the per-access map bookkeeping; it is on by default.
func (m *Machine) SetOrderTracking(on bool) { m.noOrderTrack = !on }

// newThread creates a thread running the function at entry with arg in
// Arg0 and returns it.
func (m *Machine) newThread(entry int64, arg int64) *Thread {
	tid := len(m.Threads)
	t := &Thread{ID: tid, PC: entry, EntryPC: entry}
	sp := StackBase + int64(tid+1)*StackWords
	sp--
	m.Mem.Write(sp, exitSentinel)
	t.Regs[isa.SP] = sp
	t.Regs[isa.FP] = sp
	t.Regs[isa.Arg0] = arg
	m.Threads = append(m.Threads, t)
	return t
}

// Output returns the words written with SysWrite so far.
func (m *Machine) Output() []int64 { return m.output }

// Steps returns the total number of instructions executed across threads.
func (m *Machine) Steps() int64 { return m.steps }

// Stopped returns why the machine stopped, or StopNone while it can run.
func (m *Machine) Stopped() StopReason { return m.stopped }

// Failure returns the failure report when Stopped() == StopFailure.
func (m *Machine) Failure() *Failure { return m.failure }

// Quanta returns the schedule executed since the last ResetQuanta (or
// machine creation), run-length encoded.
func (m *Machine) Quanta() []Quantum { return m.quanta }

// ResetQuanta discards the recorded schedule and starts a fresh recording
// at the current point; the logger calls this at region entry. The
// scheduler's in-flight quantum is deliberately left untouched: recording
// must not perturb the execution being recorded (the run-length encoding
// is per-instruction and independent of scheduler quanta).
func (m *Machine) ResetQuanta() {
	m.quanta = nil
}

// ResetSharedTracking clears shared-memory last-access state so that order
// edges recorded after this point only relate accesses inside the region.
func (m *Machine) ResetSharedTracking() {
	m.lastAccess = make(map[int64]*accessState)
}

// Running reports whether the machine can execute another instruction.
func (m *Machine) Running() bool { return m.stopped == StopNone }

// runnable rebuilds and returns the sorted runnable thread list.
func (m *Machine) runnable() []int {
	m.runnableBuf = m.runnableBuf[:0]
	for _, t := range m.Threads {
		if t.Status == Runnable {
			m.runnableBuf = append(m.runnableBuf, t.ID)
		}
	}
	return m.runnableBuf
}

// ensureScheduled picks the next thread if the current quantum is over.
// It returns false if the machine stopped instead (exit or deadlock).
func (m *Machine) ensureScheduled() bool {
	if m.stopped != StopNone {
		return false
	}
	if !m.needSched && m.curLeft > 0 && m.Threads[m.curTid].Status == Runnable {
		return true
	}
	// A quantum was interrupted before being consumed (spawn or yield
	// forces a scheduling decision); hand the remainder back so an
	// exact-replay scheduler stays aligned with the recorded quanta.
	if m.curLeft > 0 && m.curTid < len(m.Threads) && m.Threads[m.curTid].Status == Runnable {
		if pb, ok := m.sched.(QuantumPushback); ok {
			pb.Pushback(m.curTid, m.curLeft)
		}
	}
	m.curLeft = 0
	run := m.runnable()
	if len(run) == 0 {
		for _, t := range m.Threads {
			if t.Status != Exited {
				m.stopped = StopDeadlock
				return false
			}
		}
		m.stopped = StopExit
		return false
	}
	tid, q := m.sched.Pick(run)
	ok := false
	for _, r := range run {
		if r == tid {
			ok = true
			break
		}
	}
	if !ok {
		// A scheduler bug or a divergent replay schedule; fall back to
		// the first runnable thread rather than wedge.
		tid = run[0]
	}
	m.curTid = tid
	m.curLeft = q
	m.needSched = false
	return true
}

// CurThread returns the thread that will execute the next instruction, or
// nil when the machine is stopped. Debuggers use this to test breakpoints
// before stepping.
func (m *Machine) CurThread() *Thread {
	if !m.ensureScheduled() {
		return nil
	}
	return m.Threads[m.curTid]
}

// InFlightQuantum returns the scheduler quantum currently being consumed:
// the running thread and the instructions left before the scheduler is
// consulted again, or (0, 0) when the next step will make a fresh
// scheduling decision. The flight recorder captures it at region entry —
// a region rarely starts on a quantum boundary, and gap bridging must
// resume mid-quantum to reproduce the original schedule.
func (m *Machine) InFlightQuantum() (tid int, left int64) {
	if m.needSched || m.curLeft <= 0 {
		return 0, 0
	}
	return m.curTid, m.curLeft
}

// StepOne executes exactly one instruction (of the currently scheduled
// thread) and returns true, or returns false when the machine has stopped.
// A blocked lock/join attempt does not execute an instruction; StepOne
// reschedules and retries internally in that case.
func (m *Machine) StepOne() bool {
	for {
		if !m.ensureScheduled() {
			return false
		}
		t := m.Threads[m.curTid]
		blocked := m.step(t)
		if m.stopped != StopNone {
			return m.stopped == StopNone
		}
		if blocked {
			// The attempt consumed no instruction; pick another thread.
			m.curLeft = 0
			m.needSched = true
			continue
		}
		m.curLeft--
		if m.yieldReq {
			m.yieldReq = false
			m.needSched = true
		}
		if m.maxSteps > 0 && m.steps >= m.maxSteps {
			m.stopped = StopMaxSteps
		}
		if m.limitsOn && m.stopped == StopNone {
			m.checkLimits()
		}
		return true
	}
}

// Run executes until the machine stops and returns the stop reason.
func (m *Machine) Run() StopReason {
	for m.StepOne() {
	}
	return m.stopped
}

// recordQuantum extends the run-length encoded schedule with one
// instruction executed by tid. It is called exactly once per executed
// instruction, so it also maintains the global step count.
func (m *Machine) recordQuantum(tid int) {
	m.steps++
	if n := len(m.quanta); n > 0 && m.quanta[n-1].Tid == tid {
		m.quanta[n-1].Count++
		return
	}
	m.quanta = append(m.quanta, Quantum{Tid: tid, Count: 1})
}

// fail stops the machine with a failure report for thread t.
func (m *Machine) fail(t *Thread, idx int64, format string, args ...any) {
	m.failure = &Failure{Tid: t.ID, PC: t.PC, Idx: idx, Reason: fmt.Sprintf(format, args...)}
	m.stopped = StopFailure
}

// wakeLockWaiters makes every thread blocked on addr runnable again; they
// will re-attempt the LOCK when scheduled.
func (m *Machine) wakeLockWaiters(addr int64) {
	for _, tid := range m.lockWaiters[addr] {
		if m.Threads[tid].Status == BlockedLock {
			m.Threads[tid].Status = Runnable
		}
	}
	delete(m.lockWaiters, addr)
}

// exitThread marks t exited and wakes its joiners.
func (m *Machine) exitThread(t *Thread) {
	t.Status = Exited
	for _, tid := range m.joinWaiters[t.ID] {
		if m.Threads[tid].Status == BlockedJoin {
			m.Threads[tid].Status = Runnable
		}
	}
	delete(m.joinWaiters, t.ID)
	m.needSched = true
}

// trackAccess maintains per-address last-accessor state and emits
// happens-before order edges for conflicting cross-thread access pairs —
// the shared-memory access order a pinball must contain (paper §3(ii)).
func (m *Machine) trackAccess(tid int, idx int64, addr int64, isWrite bool) {
	if addr >= StackBase {
		return // stacks are thread-private
	}
	if m.noOrderTrack {
		return
	}
	st := m.lastAccess[addr]
	if st == nil {
		st = &accessState{}
		m.lastAccess[addr] = st
	}
	if isWrite {
		if st.hasW && st.wTid != tid {
			m.tracer.OnOrderEdge(OrderEdge{FromTid: st.wTid, FromIdx: st.wIdx, ToTid: tid, ToIdx: idx, Addr: addr})
		}
		for _, r := range st.readers {
			if r.tid != tid {
				m.tracer.OnOrderEdge(OrderEdge{FromTid: r.tid, FromIdx: r.idx, ToTid: tid, ToIdx: idx, Addr: addr})
			}
		}
		st.hasW = true
		st.wTid = tid
		st.wIdx = idx
		st.readers = st.readers[:0]
		return
	}
	if st.hasW && st.wTid != tid {
		m.tracer.OnOrderEdge(OrderEdge{FromTid: st.wTid, FromIdx: st.wIdx, ToTid: tid, ToIdx: idx, Addr: addr})
	}
	for i := range st.readers {
		if st.readers[i].tid == tid {
			st.readers[i].idx = idx
			return
		}
	}
	st.readers = append(st.readers, reader{tid, idx})
}

// ThreadIDs returns the ids of all threads, sorted.
func (m *Machine) ThreadIDs() []int {
	ids := make([]int, len(m.Threads))
	for i := range m.Threads {
		ids[i] = i
	}
	sort.Ints(ids)
	return ids
}
