package vm

import "repro/internal/isa"

// InstrEvent describes one executed instruction. It is delivered to the
// Tracer after the instruction's effects are applied. The pointed-to event
// is reused between calls; tracers must copy anything they retain.
type InstrEvent struct {
	Tid int
	PC  int64
	// Idx is the per-thread dynamic instruction index (0-based): this is
	// the Idx'th instruction thread Tid has executed.
	Idx   int64
	Instr isa.Instr

	// Memory effect of this instruction, if any. EffAddr is -1 when the
	// instruction touches no memory. MemIsWrite distinguishes the access
	// direction; LOCK and UNLOCK read and then write their cell and are
	// reported as writes (with MemAlsoRead set).
	EffAddr     int64
	MemIsWrite  bool
	MemAlsoRead bool
	MemVal      int64 // value read or written

	// NextPC is where control goes after this instruction; for branches
	// and indirect jumps it reveals the dynamically taken target.
	NextPC int64

	// Taken is set for BR/BRZ when the branch condition held.
	Taken bool

	// Aux carries opcode-specific extra information: the created thread
	// id for SPAWN and the joined thread id for JOIN.
	Aux int64
}

// OrderEdge records that one shared-memory access happens before a
// conflicting access by a different thread. Accesses are identified by the
// per-thread dynamic instruction index (InstrEvent.Idx). These edges are
// exactly the shared-memory access order PinPlay captures in pinballs and
// the slicer's global-trace construction consumes.
type OrderEdge struct {
	FromTid int
	FromIdx int64
	ToTid   int
	ToIdx   int64
	Addr    int64
}

// SyscallRecord captures the result of one system call, in per-thread
// program order. Replaying feeds recorded results back instead of
// consulting the environment.
type SyscallRecord struct {
	Tid int
	Num int64
	Arg int64
	Ret int64
}

// Tracer observes execution. All methods are invoked synchronously from
// the interpreter loop; a nil Tracer field in Config disables observation
// entirely.
type Tracer interface {
	// OnInstr is called after each executed instruction.
	OnInstr(ev *InstrEvent)
	// OnOrderEdge is called when a conflicting shared-memory access pair
	// across threads is detected.
	OnOrderEdge(e OrderEdge)
	// OnSyscall is called after each system call.
	OnSyscall(r SyscallRecord)
}

// MultiTracer fans events out to several tracers in order.
type MultiTracer []Tracer

// OnInstr implements Tracer.
func (m MultiTracer) OnInstr(ev *InstrEvent) {
	for _, t := range m {
		t.OnInstr(ev)
	}
}

// OnOrderEdge implements Tracer.
func (m MultiTracer) OnOrderEdge(e OrderEdge) {
	for _, t := range m {
		t.OnOrderEdge(e)
	}
}

// OnSyscall implements Tracer.
func (m MultiTracer) OnSyscall(r SyscallRecord) {
	for _, t := range m {
		t.OnSyscall(r)
	}
}

// NopTracer implements Tracer and ignores everything; useful for
// embedding when only some callbacks are interesting.
type NopTracer struct{}

// OnInstr implements Tracer.
func (NopTracer) OnInstr(*InstrEvent) {}

// OnOrderEdge implements Tracer.
func (NopTracer) OnOrderEdge(OrderEdge) {}

// OnSyscall implements Tracer.
func (NopTracer) OnSyscall(SyscallRecord) {}
