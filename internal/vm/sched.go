package vm

// Schedulers decide which runnable thread executes next and for how long.
// The machine records the schedule it actually executed as run-length
// quanta, which is what the PinPlay-style logger stores in pinballs and the
// replay scheduler feeds back.

// Quantum is a run-length encoded schedule step: thread Tid executes Count
// consecutive instructions.
type Quantum struct {
	Tid   int
	Count int64
}

// Scheduler picks the next thread to run. runnable is the sorted list of
// currently runnable thread ids (never empty when Pick is called). Pick
// returns the chosen tid and the maximum number of instructions it may
// execute before the scheduler is consulted again.
type Scheduler interface {
	Pick(runnable []int) (tid int, quantum int64)
}

// RandomScheduler emulates OS scheduling nondeterminism with a seeded
// xorshift generator: uniform thread choice and jittered preemption
// quanta. The same seed yields the same schedule decisions given the same
// sequence of runnable sets, but the intended use is "different seed,
// different interleaving", as on real hardware.
type RandomScheduler struct {
	state   uint64
	MeanQ   int64 // mean quantum length in instructions
	Preempt bool  // if false, runs each thread until it blocks or exits
}

// NewRandomScheduler returns a preemptive scheduler with the given seed
// and a mean quantum of meanQ instructions.
func NewRandomScheduler(seed int64, meanQ int64) *RandomScheduler {
	if meanQ <= 0 {
		meanQ = 1000
	}
	return &RandomScheduler{state: uint64(seed)*2685821657736338717 + 1442695040888963407, MeanQ: meanQ, Preempt: true}
}

// ResumeRandomScheduler reconstructs a scheduler at an exact generator
// state captured with State(). Flight-recorder bridging uses it to
// re-derive evicted schedule windows: a scheduler resumed at the state a
// recording started from makes the same decisions the recording saw.
func ResumeRandomScheduler(state uint64, meanQ int64) *RandomScheduler {
	if meanQ <= 0 {
		meanQ = 1000
	}
	return &RandomScheduler{state: state, MeanQ: meanQ, Preempt: true}
}

// State exposes the generator state for capture and later resumption.
func (s *RandomScheduler) State() uint64 { return s.state }

func (s *RandomScheduler) next() uint64 {
	x := s.state
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.state = x
	return x
}

// Pick implements Scheduler.
func (s *RandomScheduler) Pick(runnable []int) (int, int64) {
	tid := runnable[int(s.next()%uint64(len(runnable)))]
	if !s.Preempt {
		return tid, 1 << 62
	}
	// Quantum in [MeanQ/2, 3*MeanQ/2) keeps preemption frequent but not
	// degenerate.
	q := s.MeanQ/2 + int64(s.next()%uint64(s.MeanQ))
	if q < 1 {
		q = 1
	}
	return tid, q
}

// QuantumPushback is implemented by schedulers that need to be told when
// the machine interrupts a quantum before it is fully consumed (thread
// creation and yields force a scheduling decision mid-quantum). The
// remaining count is handed back so an exact-replay scheduler does not
// lose it.
type QuantumPushback interface {
	Pushback(tid int, remaining int64)
}

// ReplayScheduler replays a recorded quantum sequence exactly, which is
// how the PinPlay replayer reproduces the logged thread interleaving.
type ReplayScheduler struct {
	quanta  []Quantum
	pos     int
	pending Quantum // pushed-back remainder of an interrupted quantum
}

// NewReplayScheduler returns a scheduler that replays quanta in order.
func NewReplayScheduler(quanta []Quantum) *ReplayScheduler {
	return &ReplayScheduler{quanta: quanta}
}

// Pushback implements QuantumPushback.
func (s *ReplayScheduler) Pushback(tid int, remaining int64) {
	s.pending = Quantum{Tid: tid, Count: remaining}
}

// Pick implements Scheduler. After the recorded schedule is exhausted it
// falls back to the first runnable thread, which only matters if a tool
// keeps executing past the recorded region.
func (s *ReplayScheduler) Pick(runnable []int) (int, int64) {
	if s.pending.Count > 0 {
		q := s.pending
		s.pending = Quantum{}
		for _, tid := range runnable {
			if tid == q.Tid {
				return q.Tid, q.Count
			}
		}
		// The interrupted thread is no longer runnable; drop the
		// remainder (cannot happen for spawn/yield interrupts).
	}
	for s.pos < len(s.quanta) {
		q := s.quanta[s.pos]
		s.pos++
		if q.Count <= 0 {
			continue
		}
		return q.Tid, q.Count
	}
	return runnable[0], 1 << 62
}

// Exhausted reports whether the recorded schedule has been fully consumed.
func (s *ReplayScheduler) Exhausted() bool {
	return s.pos >= len(s.quanta) && s.pending.Count == 0
}

// RoundRobinScheduler cycles through runnable threads with a fixed
// quantum. Deterministic; used by tests and by Maple's profiling phase.
type RoundRobinScheduler struct {
	QuantumLen int64
	last       int
}

// Pick implements Scheduler.
func (s *RoundRobinScheduler) Pick(runnable []int) (int, int64) {
	q := s.QuantumLen
	if q <= 0 {
		q = 100
	}
	for _, tid := range runnable {
		if tid > s.last {
			s.last = tid
			return tid, q
		}
	}
	s.last = runnable[0]
	return runnable[0], q
}

// PriorityScheduler always runs the runnable thread with the highest
// priority (ties broken by lowest tid) on a single virtual processor.
// Maple's active scheduler manipulates these priorities to force a
// predicted interleaving.
type PriorityScheduler struct {
	prio map[int]int
}

// NewPriorityScheduler returns a scheduler with all priorities at zero.
func NewPriorityScheduler() *PriorityScheduler {
	return &PriorityScheduler{prio: make(map[int]int)}
}

// SetPriority sets a thread's scheduling priority; higher runs first.
func (s *PriorityScheduler) SetPriority(tid, p int) { s.prio[tid] = p }

// Priority returns a thread's current priority.
func (s *PriorityScheduler) Priority(tid int) int { return s.prio[tid] }

// Pick implements Scheduler. The quantum is 1 so that priority changes
// made by Maple's scheduler hooks take effect immediately.
func (s *PriorityScheduler) Pick(runnable []int) (int, int64) {
	best := runnable[0]
	for _, tid := range runnable[1:] {
		if s.prio[tid] > s.prio[best] || (s.prio[tid] == s.prio[best] && tid < best) {
			best = tid
		}
	}
	return best, 1
}
