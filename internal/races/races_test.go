package races_test

import (
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/pinplay"
	"repro/internal/races"
	"repro/internal/slice"
	"repro/internal/tracer"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// traceOf records a whole run (any end state) and returns its trace.
func traceOf(t *testing.T, src string, seed int64) (*isa.Program, *tracer.Trace) {
	t.Helper()
	prog, err := cc.CompileSource("r.c", src)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := pinplay.Log(prog, pinplay.LogConfig{Seed: seed, MeanQuantum: 11}, pinplay.RegionSpec{})
	if err != nil {
		t.Fatal(err)
	}
	sess := core.Open(prog, pb)
	tr, err := sess.Trace()
	if err != nil {
		t.Fatal(err)
	}
	return prog, tr
}

func TestNoRacesWhenFullyLocked(t *testing.T) {
	_, tr := traceOf(t, `
int counter;
int mtx;
int worker(int n) {
	int i;
	for (i = 0; i < 30; i++) {
		lock(&mtx);
		counter = counter + 1;
		unlock(&mtx);
	}
	return 0;
}
int main() {
	int t1 = spawn(worker, 0);
	int t2 = spawn(worker, 0);
	worker(0);
	join(t1);
	join(t2);
	write(counter);
	return 0;
}`, 5)
	rep, err := races.Detect(tr, vm.StackBase)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Races) != 0 {
		t.Fatalf("false positives on fully locked counter: %+v", rep.Races)
	}
	if rep.Checked == 0 {
		t.Error("no accesses checked")
	}
}

func TestDetectsUnlockedCounterRace(t *testing.T) {
	_, tr := traceOf(t, `
int counter;
int worker(int n) {
	int i;
	for (i = 0; i < 30; i++) { counter = counter + 1; }
	return 0;
}
int main() {
	int t1 = spawn(worker, 0);
	worker(0);
	join(t1);
	write(counter);
	return 0;
}`, 5)
	rep, err := races.Detect(tr, vm.StackBase)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Races) == 0 {
		t.Fatal("missed the unlocked counter race")
	}
	ww := false
	for _, r := range rep.Races {
		if r.First.Tid == r.Second.Tid {
			t.Errorf("same-thread race reported: %+v", r)
		}
		if r.WriteWrite {
			ww = true
		}
	}
	if !ww {
		t.Error("no write/write race on the counter")
	}
}

func TestSpawnJoinInduceOrder(t *testing.T) {
	// Parent writes before spawn; child reads; child writes; parent reads
	// after join: fully ordered, no races despite no locks.
	_, tr := traceOf(t, `
int box;
int child(int u) {
	box = box + 1;
	return 0;
}
int main() {
	box = 10;
	int t = spawn(child, 0);
	join(t);
	write(box);
	return 0;
}`, 3)
	rep, err := races.Detect(tr, vm.StackBase)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Races) != 0 {
		t.Fatalf("spawn/join order not honoured: %+v", rep.Races)
	}
}

func TestLockOnlyOrdersSameLock(t *testing.T) {
	// Two variables guarded by two different locks in different threads:
	// accesses to v guarded by different locks still race.
	_, tr := traceOf(t, `
int v;
int m1;
int m2;
int a(int u) {
	lock(&m1);
	v = v + 1;
	unlock(&m1);
	return 0;
}
int main() {
	int t = spawn(a, 0);
	lock(&m2);
	v = v + 10;
	unlock(&m2);
	join(t);
	write(v);
	return 0;
}`, 7)
	rep, err := races.Detect(tr, vm.StackBase)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Races) == 0 {
		t.Fatal("different-lock accesses must race")
	}
}

func TestTable1BugsAreRacy(t *testing.T) {
	// The pbzip2 and aget reconstructions must show their reported races.
	for _, tc := range []struct {
		name   string
		symbol string
	}{
		{"pbzip2", "fifoValid"},
		{"aget", "bwritten"},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			w, err := workloads.ByName(tc.name)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := w.Program()
			if err != nil {
				t.Fatal(err)
			}
			pb, err := pinplay.Log(prog, pinplay.LogConfig{
				Seed: 3, MeanQuantum: 15, Input: w.Input(w.DefaultThreads, 30), MaxSteps: 50_000_000,
			}, pinplay.RegionSpec{})
			if err != nil {
				t.Fatal(err)
			}
			sess := core.Open(prog, pb)
			rep, err := sess.DetectRaces()
			if err != nil {
				t.Fatal(err)
			}
			tr, _ := sess.Trace()
			sym := prog.SymbolByName(tc.symbol)
			if sym == nil {
				t.Fatalf("no symbol %s", tc.symbol)
			}
			found := false
			for _, r := range rep.Races {
				if r.Addr >= sym.Addr && r.Addr < sym.Addr+sym.Size {
					found = true
					desc := r.Describe(tr, prog)
					if !strings.Contains(desc, tc.symbol) {
						t.Errorf("Describe missing symbol name: %s", desc)
					}
				}
			}
			if !found {
				t.Errorf("race on %s not detected; %d races found", tc.symbol, len(rep.Races))
			}
		})
	}
}

func TestRacyAccessIsSliceable(t *testing.T) {
	// Each reported race endpoint is a usable slicing criterion.
	prog, tr := traceOf(t, `
int v;
int w2(int u) { v = 5; return 0; }
int main() {
	int t = spawn(w2, 0);
	v = 7;
	join(t);
	write(v);
	return 0;
}`, 9)
	rep, err := races.Detect(tr, vm.StackBase)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Races) == 0 {
		t.Fatal("race not detected")
	}
	s, err := sliceNew(prog, tr)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := s.Slice(rep.Races[0].Second)
	if err != nil {
		t.Fatalf("slicing racy access: %v", err)
	}
	if sl.Stats.Members == 0 {
		t.Error("empty slice for racy access")
	}
}

// sliceNew builds a slicer for the race-to-slice handoff test.
func sliceNew(prog *isa.Program, tr *tracer.Trace) (*slice.Slicer, error) {
	return slice.New(prog, tr, slice.DefaultOptions())
}
