// Package races implements a FastTrack-style happens-before data-race
// detector over DrDebug's collected traces — the companion analysis the
// paper's related work points at (Tallam et al., "Dynamic slicing of
// multithreaded programs for race detection"): because a replayed region
// comes with its full shared-memory access order and synchronisation
// history, races can be detected deterministically and each racy access
// handed straight to the slicer as a criterion.
//
// Happens-before is induced by program order, lock release→acquire on
// the same lock cell, spawn→child-start and child-exit→join. Two
// conflicting accesses (same shared word, different threads, at least
// one write) unordered by happens-before constitute a race.
package races

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/tracer"
)

// Race is one detected data race: two dynamically unordered conflicting
// accesses. First is the access that appeared earlier in the replayed
// (observed) order.
type Race struct {
	Addr   int64
	First  tracer.Ref
	Second tracer.Ref
	// WriteWrite is true for write/write races; otherwise one side is a
	// read.
	WriteWrite bool
}

// Report is the outcome of race detection on one trace.
type Report struct {
	// Races holds one representative race per (pc, pc, addr-class)
	// triple, in observed order of the second access.
	Races []Race
	// Checked counts the shared-memory accesses examined.
	Checked int64
}

// vc is a vector clock, indexed by thread id.
type vc []int64

func (v vc) get(t int) int64 {
	if t < len(v) {
		return v[t]
	}
	return 0
}

func (v *vc) set(t int, x int64) {
	for len(*v) <= t {
		*v = append(*v, 0)
	}
	(*v)[t] = x
}

// join merges o into v (pointwise max).
func (v *vc) join(o vc) {
	for t, x := range o {
		if x > v.get(t) {
			v.set(t, x)
		}
	}
}

// happensBefore reports whether an event with clock (t, c) happens
// before the thread holding clock w.
func happensBefore(t int, c int64, w vc) bool { return c <= w.get(t) }

// epoch is a single (tid, clock) access stamp.
type epoch struct {
	tid int
	c   int64
	ref tracer.Ref
}

// addrState tracks the last write and the read set since that write for
// one shared word.
type addrState struct {
	write    epoch
	hasWrite bool
	reads    []epoch
}

// Detect runs happens-before race detection over the trace's global
// order. BuildGlobal must have been called (slicing sessions already
// guarantee this).
func Detect(tr *tracer.Trace, sharedLimit int64) (*Report, error) {
	if len(tr.Global) == 0 && tr.Len() > 0 {
		return nil, fmt.Errorf("races: trace has no global order (call BuildGlobal)")
	}

	clocks := map[int]*vc{}   // thread -> vector clock
	lockRel := map[int64]vc{} // lock cell -> clock at last release
	exitClock := map[int]vc{} // thread -> clock at exit
	state := map[int64]*addrState{}

	pendingJoin := map[int]vc{} // woken thread -> signaler clock to join

	clockOf := func(tid int) *vc {
		c, ok := clocks[tid]
		if !ok {
			c = &vc{}
			c.set(tid, 1)
			clocks[tid] = c
		}
		return c
	}

	rep := &Report{}
	seen := map[[3]int64]bool{} // (pc1, pc2, addr) dedup

	report := func(prev epoch, cur epoch, addr int64, ww bool) {
		e1 := tr.Entry(prev.ref)
		e2 := tr.Entry(cur.ref)
		key := [3]int64{e1.PC, e2.PC, addr}
		if seen[key] {
			return
		}
		seen[key] = true
		rep.Races = append(rep.Races, Race{
			Addr: addr, First: prev.ref, Second: cur.ref, WriteWrite: ww,
		})
	}

	for _, ref := range tr.Global {
		e := tr.Entry(ref)
		tid := e.Tid
		c := clockOf(tid)
		if pj, ok := pendingJoin[tid]; ok {
			c.join(pj)
			delete(pendingJoin, tid)
		}

		switch e.Instr.Op {
		case isa.LOCK:
			// Acquire: join the last releaser's clock.
			if rel, ok := lockRel[e.EffAddr]; ok {
				c.join(rel)
			}
			continue
		case isa.UNLOCK:
			// Release: publish this thread's clock, then advance it.
			cp := make(vc, len(*c))
			copy(cp, *c)
			lockRel[e.EffAddr] = cp
			c.set(tid, c.get(tid)+1)
			continue
		case isa.SPAWN:
			// Child inherits the parent's clock.
			child := int(e.Aux)
			cc := clockOf(child)
			cc.join(*c)
			cc.set(child, cc.get(child)+1)
			c.set(tid, c.get(tid)+1)
			continue
		case isa.JOIN:
			if ec, ok := exitClock[int(e.Aux)]; ok {
				c.join(ec)
			}
			continue
		case isa.WAIT:
			// Releases the mutex (EffAddr): publish like an unlock.
			cp := make(vc, len(*c))
			copy(cp, *c)
			lockRel[e.EffAddr] = cp
			c.set(tid, c.get(tid)+1)
			continue
		case isa.SIGNAL:
			// The woken thread (Aux) inherits the signaler's clock at
			// its next instruction.
			if e.Aux >= 0 {
				cp := make(vc, len(*c))
				copy(cp, *c)
				if prev, ok := pendingJoin[int(e.Aux)]; ok {
					cp.join(prev)
				}
				pendingJoin[int(e.Aux)] = cp
			}
			c.set(tid, c.get(tid)+1)
			continue
		case isa.RET:
			if e.NextPC == -1 {
				// Thread exit: publish the clock for joiners.
				cp := make(vc, len(*c))
				copy(cp, *c)
				exitClock[tid] = cp
			}
			continue
		}

		if e.EffAddr < 0 || e.EffAddr >= sharedLimit {
			continue
		}
		rep.Checked++
		st := state[e.EffAddr]
		if st == nil {
			st = &addrState{}
			state[e.EffAddr] = st
		}
		myC := c.get(tid)

		if e.MemIsWrite {
			// Write vs previous write.
			if st.hasWrite && st.write.tid != tid && !happensBefore(st.write.tid, st.write.c, *c) {
				report(st.write, epoch{tid, myC, ref}, e.EffAddr, true)
			}
			// Write vs reads since the previous write.
			for _, r := range st.reads {
				if r.tid != tid && !happensBefore(r.tid, r.c, *c) {
					report(r, epoch{tid, myC, ref}, e.EffAddr, false)
				}
			}
			st.write = epoch{tid, myC, ref}
			st.hasWrite = true
			st.reads = st.reads[:0]
		} else {
			// Read vs previous write.
			if st.hasWrite && st.write.tid != tid && !happensBefore(st.write.tid, st.write.c, *c) {
				report(st.write, epoch{tid, myC, ref}, e.EffAddr, false)
			}
			// Keep one read epoch per thread (the latest).
			kept := false
			for i := range st.reads {
				if st.reads[i].tid == tid {
					st.reads[i] = epoch{tid, myC, ref}
					kept = true
					break
				}
			}
			if !kept {
				st.reads = append(st.reads, epoch{tid, myC, ref})
			}
		}
	}

	sort.Slice(rep.Races, func(i, j int) bool {
		gi, _ := tr.GlobalPosOf(rep.Races[i].Second)
		gj, _ := tr.GlobalPosOf(rep.Races[j].Second)
		return gi < gj
	})
	return rep, nil
}

// Describe renders one race with source positions.
func (r Race) Describe(tr *tracer.Trace, prog *isa.Program) string {
	e1 := tr.Entry(r.First)
	e2 := tr.Entry(r.Second)
	kind := "read/write"
	if r.WriteWrite {
		kind = "write/write"
	}
	loc := fmt.Sprintf("word %d", r.Addr)
	if sym := prog.SymbolAt(r.Addr); sym != nil {
		loc = sym.Name
		if sym.Size > 1 {
			loc = fmt.Sprintf("%s[%d]", sym.Name, r.Addr-sym.Addr)
		}
	}
	return fmt.Sprintf("%s race on %s: T%d at %s  <->  T%d at %s",
		kind, loc, e1.Tid, prog.SourceOf(e1.PC), e2.Tid, prog.SourceOf(e2.PC))
}
