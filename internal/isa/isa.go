// Package isa defines the instruction set of the register machine that
// serves as DrDebug's execution substrate.
//
// The paper's tool-chain operates on native x86/Intel64 binaries through
// Pin's dynamic instrumentation. This package provides the equivalent
// substrate for a pure-Go reproduction: an x86-flavoured ISA that retains
// every feature the paper's algorithms depend on — register/memory def-use
// per instruction, indirect jumps (switch jump tables), an explicit stack
// with PUSH/POP used by callee-save prologue/epilogue pairs, locks, thread
// spawn/join, and nondeterministic system calls.
//
// Words are 64-bit signed integers and memory is word-addressed.
package isa

import "fmt"

// Reg names a machine register. R0..R15 are general purpose; SP and FP are
// the stack and frame pointers; RZ reads as zero and ignores writes.
type Reg uint8

// Register file layout.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	SP // stack pointer (word address, grows down)
	FP // frame pointer
	RZ // hard-wired zero: reads 0, writes discarded

	// NumRegs is the size of the architectural register file, including
	// SP, FP and RZ.
	NumRegs = 19
)

// Conventional roles assigned by the mini-C compiler (internal/cc). They are
// conventions only; the hardware treats all of R0..R15 identically.
const (
	RetReg    = R0 // function return value
	Arg0      = R1 // first argument
	Arg1      = R2
	Arg2      = R3
	ScratchLo = R4 // R4..R7 caller-saved temporaries
	CalleeLo  = R8 // R8..R15 callee-saved (pushed/popped by prologue/epilogue)
	CalleeHi  = R15
)

// String returns the assembler spelling of the register.
func (r Reg) String() string {
	switch {
	case r < SP:
		return fmt.Sprintf("r%d", int(r))
	case r == SP:
		return "sp"
	case r == FP:
		return "fp"
	case r == RZ:
		return "rz"
	}
	return fmt.Sprintf("r?%d", int(r))
}

// Op is an instruction opcode.
type Op uint8

// The instruction set. Operand conventions are documented per opcode in
// terms of the Instr fields Rd, Rs1, Rs2 and Imm.
const (
	// NOP does nothing.
	NOP Op = iota

	// MOVI: Rd <- Imm.
	MOVI
	// MOV: Rd <- Rs1.
	MOV
	// LOAD: Rd <- mem[Rs1 + Imm]. Use Rs1 = RZ for absolute addressing.
	LOAD
	// STORE: mem[Rs1 + Imm] <- Rs2.
	STORE
	// PUSH: SP <- SP - 1; mem[SP] <- Rs1.
	PUSH
	// POP: Rd <- mem[SP]; SP <- SP + 1.
	POP

	// Three-register ALU: Rd <- Rs1 op Rs2.
	ADD
	SUB
	MUL
	DIV // traps on divide by zero
	MOD
	AND
	OR
	XOR
	SHL
	SHR
	// ADDI: Rd <- Rs1 + Imm.
	ADDI
	// MULI: Rd <- Rs1 * Imm.
	MULI

	// Comparisons: Rd <- (Rs1 op Rs2) ? 1 : 0.
	CMPEQ
	CMPNE
	CMPLT
	CMPLE

	// BR: if Rs1 != 0, pc <- Imm. A conditional branch; a control-
	// dependence source for the slicer.
	BR
	// BRZ: if Rs1 == 0, pc <- Imm.
	BRZ
	// JMP: pc <- Imm. Unconditional direct jump.
	JMP
	// JMPI: pc <- Rs1. Indirect jump; the translation of switch jump
	// tables, and the source of static-CFG imprecision addressed by
	// Section 5.1 of the paper.
	JMPI
	// CALL: push return address; pc <- Imm (a function entry).
	CALL
	// CALLI: push return address; pc <- Rs1 (indirect call).
	CALLI
	// RET: pop return address into pc.
	RET

	// SPAWN: Rd <- tid of a new thread starting at function entry Imm
	// with Rs1 as its single argument (placed in the child's Arg0).
	SPAWN
	// JOIN: block until thread Rs1 exits.
	JOIN
	// LOCK: acquire the mutex whose cell is mem[Rs1] (blocking).
	LOCK
	// UNLOCK: release the mutex whose cell is mem[Rs1].
	UNLOCK

	// WAIT: block on the condition variable whose cell is mem[Rs1],
	// atomically releasing the mutex whose cell is mem[Rs2] (which the
	// caller must hold). The compiler emits a LOCK on the same mutex
	// immediately after, so wakeup is followed by reacquisition exactly
	// as in pthread_cond_wait.
	WAIT
	// SIGNAL: wake the longest-waiting thread blocked on the condition
	// variable whose cell is mem[Rs1] (no-op when none waits).
	SIGNAL

	// SYSCALL: Rd <- syscall(Imm, Rs1). See the Sys* constants. Results of
	// nondeterministic calls are captured in pinballs by the logger.
	SYSCALL

	// ASSERT: if Rs1 == 0, raise an assertion failure — the "symptom" of
	// a bug in the paper's terminology. Execution of the failing thread
	// stops and the machine reports the failure point.
	ASSERT

	// HALT: terminate the whole program (all threads).
	HALT

	numOps
)

// System call numbers for SYSCALL's Imm field.
const (
	// SysRead returns the next word of program input. Nondeterministic
	// from the program's point of view; logged in pinballs.
	SysRead int64 = 1
	// SysWrite appends the argument word to the program output.
	SysWrite int64 = 2
	// SysTime returns a (logical) timestamp. Logged.
	SysTime int64 = 3
	// SysRand returns a pseudo-random word. Logged.
	SysRand int64 = 4
	// SysAlloc bump-allocates the argument number of words from the heap
	// and returns the base address. Deterministic but logged anyway so
	// that replay does not depend on allocator internals.
	SysAlloc int64 = 5
	// SysThreadID returns the calling thread's id. Deterministic.
	SysThreadID int64 = 6
	// SysYield hints the scheduler to preempt the calling thread.
	SysYield int64 = 7
)

var opNames = [numOps]string{
	NOP: "nop", MOVI: "movi", MOV: "mov", LOAD: "load", STORE: "store",
	PUSH: "push", POP: "pop",
	ADD: "add", SUB: "sub", MUL: "mul", DIV: "div", MOD: "mod",
	AND: "and", OR: "or", XOR: "xor", SHL: "shl", SHR: "shr",
	ADDI: "addi", MULI: "muli",
	CMPEQ: "cmpeq", CMPNE: "cmpne", CMPLT: "cmplt", CMPLE: "cmple",
	BR: "br", BRZ: "brz", JMP: "jmp", JMPI: "jmpi",
	CALL: "call", CALLI: "calli", RET: "ret",
	SPAWN: "spawn", JOIN: "join", LOCK: "lock", UNLOCK: "unlock",
	WAIT: "wait", SIGNAL: "signal",
	SYSCALL: "syscall", ASSERT: "assert", HALT: "halt",
}

// String returns the assembler mnemonic of the opcode.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op?%d", int(op))
}

// Valid reports whether op is a defined opcode.
func (op Op) Valid() bool { return op < numOps }

// Instr is one machine instruction. The interpretation of the operand
// fields depends on Op; see the opcode documentation.
type Instr struct {
	Op       Op
	Rd       Reg   // destination register
	Rs1, Rs2 Reg   // source registers
	Imm      int64 // immediate: constant, address offset, or jump target pc
	Line     int32 // 1-based source line (0 = unknown)
	File     int32 // index into Program.Files (valid when Line != 0)
}

// IsBranch reports whether the instruction can transfer control to more
// than one successor (conditional branches and indirect jumps). These are
// the instructions that give rise to dynamic control dependences.
func (i Instr) IsBranch() bool {
	switch i.Op {
	case BR, BRZ, JMPI:
		return true
	}
	return false
}

// IsCall reports whether the instruction is a direct or indirect call.
func (i Instr) IsCall() bool { return i.Op == CALL || i.Op == CALLI }

// EndsBlock reports whether the instruction terminates a basic block.
func (i Instr) EndsBlock() bool {
	switch i.Op {
	case BR, BRZ, JMP, JMPI, RET, HALT:
		return true
	}
	return false
}

// WritesMem reports whether executing the instruction writes memory.
// CALL pushes the return address and so writes the stack.
func (i Instr) WritesMem() bool {
	switch i.Op {
	case STORE, PUSH, CALL, CALLI, WAIT:
		return true
	}
	return false
}

// ReadsMem reports whether executing the instruction reads memory.
// RET pops the return address. LOCK/UNLOCK both read (and write) the mutex
// cell.
func (i Instr) ReadsMem() bool {
	switch i.Op {
	case LOAD, POP, RET, LOCK, UNLOCK:
		return true
	}
	return false
}
