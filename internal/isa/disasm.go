package isa

import (
	"fmt"
	"strings"
)

// String disassembles the instruction into assembler syntax.
func (i Instr) String() string {
	switch i.Op {
	case NOP, RET, HALT:
		return i.Op.String()
	case MOVI:
		return fmt.Sprintf("movi %s, %d", i.Rd, i.Imm)
	case MOV:
		return fmt.Sprintf("mov %s, %s", i.Rd, i.Rs1)
	case LOAD:
		return fmt.Sprintf("load %s, [%s%+d]", i.Rd, i.Rs1, i.Imm)
	case STORE:
		return fmt.Sprintf("store [%s%+d], %s", i.Rs1, i.Imm, i.Rs2)
	case PUSH:
		return fmt.Sprintf("push %s", i.Rs1)
	case POP:
		return fmt.Sprintf("pop %s", i.Rd)
	case ADD, SUB, MUL, DIV, MOD, AND, OR, XOR, SHL, SHR,
		CMPEQ, CMPNE, CMPLT, CMPLE:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rs1, i.Rs2)
	case ADDI, MULI:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	case BR, BRZ:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rs1, i.Imm)
	case JMP, CALL:
		return fmt.Sprintf("%s %d", i.Op, i.Imm)
	case JMPI, CALLI:
		return fmt.Sprintf("%s %s", i.Op, i.Rs1)
	case SPAWN:
		return fmt.Sprintf("spawn %s, %d, %s", i.Rd, i.Imm, i.Rs1)
	case JOIN, LOCK, UNLOCK, ASSERT, SIGNAL:
		return fmt.Sprintf("%s %s", i.Op, i.Rs1)
	case WAIT:
		return fmt.Sprintf("wait %s, %s", i.Rs1, i.Rs2)
	case SYSCALL:
		return fmt.Sprintf("syscall %s, %d, %s", i.Rd, i.Imm, i.Rs1)
	}
	return fmt.Sprintf("%s ?", i.Op)
}

// Disassemble renders the whole program, annotating function entries and
// source lines, mainly for debugging the tool-chain itself.
func Disassemble(p *Program) string {
	var b strings.Builder
	fi := 0
	for pc, in := range p.Code {
		for fi < len(p.Funcs) && p.Funcs[fi].Entry == int64(pc) {
			fmt.Fprintf(&b, "%s:\n", p.Funcs[fi].Name)
			fi++
		}
		src := ""
		if in.Line != 0 && int(in.File) < len(p.Files) {
			src = fmt.Sprintf("\t; %s:%d", p.Files[in.File], in.Line)
		}
		fmt.Fprintf(&b, "%6d\t%s%s\n", pc, in.String(), src)
	}
	return b.String()
}
