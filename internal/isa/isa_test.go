package isa

import (
	"strings"
	"testing"
)

func TestOpStrings(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "op?") {
			t.Errorf("opcode %d has no mnemonic", op)
		}
		if !op.Valid() {
			t.Errorf("opcode %d should be valid", op)
		}
	}
	if Op(numOps).Valid() {
		t.Error("out-of-range opcode reported valid")
	}
}

func TestRegString(t *testing.T) {
	cases := map[Reg]string{R0: "r0", R15: "r15", SP: "sp", FP: "fp", RZ: "rz"}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", r, got, want)
		}
	}
}

func TestRegDefUse(t *testing.T) {
	cases := []struct {
		in   Instr
		uses []Reg
		defs []Reg
	}{
		{Instr{Op: ADD, Rd: R0, Rs1: R1, Rs2: R2}, []Reg{R1, R2}, []Reg{R0}},
		{Instr{Op: MOVI, Rd: R3, Imm: 5}, nil, []Reg{R3}},
		{Instr{Op: LOAD, Rd: R1, Rs1: R2}, []Reg{R2}, []Reg{R1}},
		{Instr{Op: LOAD, Rd: R1, Rs1: RZ}, nil, []Reg{R1}},
		{Instr{Op: STORE, Rs1: R2, Rs2: R3}, []Reg{R2, R3}, nil},
		{Instr{Op: PUSH, Rs1: R1}, []Reg{R1, SP}, []Reg{SP}},
		{Instr{Op: POP, Rd: R1}, []Reg{SP}, []Reg{R1, SP}},
		{Instr{Op: CALL}, []Reg{SP}, []Reg{SP}},
		{Instr{Op: RET}, []Reg{SP}, []Reg{SP}},
		{Instr{Op: BR, Rs1: R4}, []Reg{R4}, nil},
		{Instr{Op: JMPI, Rs1: R4}, []Reg{R4}, nil},
		{Instr{Op: SYSCALL, Rd: R0, Rs1: R1}, []Reg{R1}, []Reg{R0}},
		{Instr{Op: SPAWN, Rd: R0, Rs1: R1}, []Reg{R1}, []Reg{R0}},
		{Instr{Op: ASSERT, Rs1: R2}, []Reg{R2}, nil},
	}
	for _, tc := range cases {
		gotU := tc.in.RegUses(nil)
		gotD := tc.in.RegDefs(nil)
		if !regsEq(gotU, tc.uses) {
			t.Errorf("%v uses = %v, want %v", tc.in, gotU, tc.uses)
		}
		if !regsEq(gotD, tc.defs) {
			t.Errorf("%v defs = %v, want %v", tc.in, gotD, tc.defs)
		}
	}
}

func regsEq(a, b []Reg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestInstrPredicates(t *testing.T) {
	if !(Instr{Op: BR}).IsBranch() || !(Instr{Op: JMPI}).IsBranch() {
		t.Error("BR/JMPI must be branches")
	}
	if (Instr{Op: JMP}).IsBranch() {
		t.Error("JMP is unconditional, not a branch")
	}
	if !(Instr{Op: CALL}).IsCall() || !(Instr{Op: CALLI}).IsCall() {
		t.Error("CALL/CALLI are calls")
	}
	for _, op := range []Op{BR, BRZ, JMP, JMPI, RET, HALT} {
		if !(Instr{Op: op}).EndsBlock() {
			t.Errorf("%v should end a block", op)
		}
	}
	if (Instr{Op: ADD}).EndsBlock() {
		t.Error("ADD must not end a block")
	}
	if !(Instr{Op: STORE}).WritesMem() || !(Instr{Op: CALL}).WritesMem() {
		t.Error("STORE/CALL write memory")
	}
	if !(Instr{Op: LOAD}).ReadsMem() || !(Instr{Op: RET}).ReadsMem() {
		t.Error("LOAD/RET read memory")
	}
}

func validProgram() *Program {
	return &Program{
		Name: "p",
		Code: []Instr{
			{Op: MOVI, Rd: R0, Imm: 1},
			{Op: BR, Rs1: R0, Imm: 3},
			{Op: NOP},
			{Op: HALT},
		},
		Funcs:       []Func{{Name: "main", Entry: 0, End: 4}},
		EntryPC:     0,
		GlobalWords: 4,
		Data:        []DataInit{{Addr: 0, Val: 7}},
		Symbols:     []Symbol{{Name: "g", Addr: 0, Size: 4}},
		Files:       []string{"p.c"},
	}
}

func TestProgramValidate(t *testing.T) {
	if err := validProgram().Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	bad := validProgram()
	bad.Code[1].Imm = 99
	if bad.Validate() == nil {
		t.Error("out-of-range branch target accepted")
	}
	bad = validProgram()
	bad.EntryPC = -1
	if bad.Validate() == nil {
		t.Error("bad entry pc accepted")
	}
	bad = validProgram()
	bad.Data[0].Addr = 100
	if bad.Validate() == nil {
		t.Error("data init outside globals accepted")
	}
	bad = validProgram()
	bad.Funcs = []Func{{Name: "a", Entry: 0, End: 3}, {Name: "b", Entry: 2, End: 4}}
	if bad.Validate() == nil {
		t.Error("overlapping functions accepted")
	}
}

func TestProgramLookups(t *testing.T) {
	p := validProgram()
	if f := p.FuncAt(2); f == nil || f.Name != "main" {
		t.Errorf("FuncAt(2) = %v", f)
	}
	if f := p.FuncAt(10); f != nil {
		t.Errorf("FuncAt(10) = %v, want nil", f)
	}
	if p.FuncByName("main") == nil || p.FuncByName("nope") != nil {
		t.Error("FuncByName broken")
	}
	if p.SymbolByName("g") == nil || p.SymbolByName("h") != nil {
		t.Error("SymbolByName broken")
	}
	if s := p.SymbolAt(2); s == nil || s.Name != "g" {
		t.Error("SymbolAt broken")
	}
	if p.SymbolAt(100) != nil {
		t.Error("SymbolAt out of range should be nil")
	}
}

func TestSourceOf(t *testing.T) {
	p := validProgram()
	p.Code[0].Line = 12
	p.Code[0].File = 0
	if got := p.SourceOf(0); got != "p.c:12" {
		t.Errorf("SourceOf(0) = %q", got)
	}
	if got := p.SourceOf(2); got != "?" {
		t.Errorf("SourceOf(2) = %q, want ?", got)
	}
	if got := p.SourceOf(-1); got != "?" {
		t.Errorf("SourceOf(-1) = %q, want ?", got)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	p := validProgram()
	text := Disassemble(p)
	for _, want := range []string{"main:", "movi r0, 1", "br r0, 3", "halt"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestInstrStringForms(t *testing.T) {
	cases := map[string]Instr{
		"load r1, [r2+4]":   {Op: LOAD, Rd: R1, Rs1: R2, Imm: 4},
		"store [r2+0], r3":  {Op: STORE, Rs1: R2, Rs2: R3},
		"add r1, r2, r3":    {Op: ADD, Rd: R1, Rs1: R2, Rs2: R3},
		"addi r1, r2, -1":   {Op: ADDI, Rd: R1, Rs1: R2, Imm: -1},
		"spawn r1, 5, r2":   {Op: SPAWN, Rd: R1, Imm: 5, Rs1: R2},
		"syscall r0, 2, r1": {Op: SYSCALL, Rd: R0, Imm: 2, Rs1: R1},
		"jmpi r4":           {Op: JMPI, Rs1: R4},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
