package isa

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Func describes one function in a program: a half-open pc range
// [Entry, End) within Program.Code. Functions never overlap.
type Func struct {
	Name  string
	Entry int64
	End   int64
}

// Contains reports whether pc lies inside the function body.
func (f Func) Contains(pc int64) bool { return pc >= f.Entry && pc < f.End }

// Symbol names a global data object so that the debugger can resolve
// variable names to addresses. Size is in words.
type Symbol struct {
	Name string
	Addr int64
	Size int64
}

// DataInit gives an initial value for one global memory word.
type DataInit struct {
	Addr int64
	Val  int64
}

// JumpTable records the compiler's knowledge of a switch jump table: the
// global words [Base, Base+len(Targets)) hold the pc values in Targets.
// Static code discovery deliberately ignores jump tables when building the
// "approximate" CFG — resolving indirect-jump targets dynamically is
// exactly the Section 5.1 refinement — but the tables are kept so tests
// can compare refined CFGs against ground truth.
type JumpTable struct {
	Base    int64
	Targets []int64
}

// Program is a loaded executable: flat code, function map, initialised
// globals and debug metadata. Programs are immutable once built.
type Program struct {
	Name    string
	Code    []Instr
	Funcs   []Func // sorted by Entry, non-overlapping
	EntryPC int64  // pc where the main thread starts

	// GlobalWords is the number of words of statically allocated global
	// data, occupying addresses [0, GlobalWords).
	GlobalWords int64
	Data        []DataInit
	Symbols     []Symbol
	JumpTables  []JumpTable

	Files []string // source file table referenced by Instr.File
}

// Validate checks structural well-formedness: jump targets in range,
// function ranges sorted and disjoint, entry pc valid. It returns the
// first problem found.
func (p *Program) Validate() error {
	n := int64(len(p.Code))
	if n == 0 {
		return fmt.Errorf("isa: %s: empty code", p.Name)
	}
	if p.EntryPC < 0 || p.EntryPC >= n {
		return fmt.Errorf("isa: %s: entry pc %d out of range [0,%d)", p.Name, p.EntryPC, n)
	}
	for pc, in := range p.Code {
		if !in.Op.Valid() {
			return fmt.Errorf("isa: %s: pc %d: invalid opcode %d", p.Name, pc, in.Op)
		}
		switch in.Op {
		case BR, BRZ, JMP, CALL, SPAWN:
			if in.Imm < 0 || in.Imm >= n {
				return fmt.Errorf("isa: %s: pc %d: %s target %d out of range", p.Name, pc, in.Op, in.Imm)
			}
		}
		if in.Rd >= NumRegs || in.Rs1 >= NumRegs || in.Rs2 >= NumRegs {
			return fmt.Errorf("isa: %s: pc %d: register out of range", p.Name, pc)
		}
	}
	for i, f := range p.Funcs {
		if f.Entry < 0 || f.End > n || f.Entry >= f.End {
			return fmt.Errorf("isa: %s: func %s: bad range [%d,%d)", p.Name, f.Name, f.Entry, f.End)
		}
		if i > 0 && f.Entry < p.Funcs[i-1].End {
			return fmt.Errorf("isa: %s: func %s overlaps %s", p.Name, f.Name, p.Funcs[i-1].Name)
		}
	}
	for _, d := range p.Data {
		if d.Addr < 0 || d.Addr >= p.GlobalWords {
			return fmt.Errorf("isa: %s: data init at %d outside globals [0,%d)", p.Name, d.Addr, p.GlobalWords)
		}
	}
	return nil
}

// FuncAt returns the function containing pc, or nil if pc is not inside
// any known function.
func (p *Program) FuncAt(pc int64) *Func {
	i := sort.Search(len(p.Funcs), func(i int) bool { return p.Funcs[i].End > pc })
	if i < len(p.Funcs) && p.Funcs[i].Contains(pc) {
		return &p.Funcs[i]
	}
	return nil
}

// FuncByName returns the named function, or nil.
func (p *Program) FuncByName(name string) *Func {
	for i := range p.Funcs {
		if p.Funcs[i].Name == name {
			return &p.Funcs[i]
		}
	}
	return nil
}

// SymbolByName returns the named global symbol, or nil.
func (p *Program) SymbolByName(name string) *Symbol {
	for i := range p.Symbols {
		if p.Symbols[i].Name == name {
			return &p.Symbols[i]
		}
	}
	return nil
}

// SymbolAt returns the symbol covering addr, or nil.
func (p *Program) SymbolAt(addr int64) *Symbol {
	for i := range p.Symbols {
		s := &p.Symbols[i]
		if addr >= s.Addr && addr < s.Addr+s.Size {
			return s
		}
	}
	return nil
}

// SourceOf returns the "file:line" position of the instruction at pc, or
// "?" when no line information exists.
func (p *Program) SourceOf(pc int64) string {
	if pc < 0 || pc >= int64(len(p.Code)) {
		return "?"
	}
	in := p.Code[pc]
	if in.Line == 0 || int(in.File) >= len(p.Files) {
		return "?"
	}
	return fmt.Sprintf("%s:%d", p.Files[in.File], in.Line)
}

// LineOf returns the source line of the instruction at pc (0 if unknown).
func (p *Program) LineOf(pc int64) int32 {
	if pc < 0 || pc >= int64(len(p.Code)) {
		return 0
	}
	return p.Code[pc].Line
}

// ResolveLocation maps a user-facing location spec to a pc: a function
// name resolves to its entry, "file:line" (file may be a suffix, or empty
// as ":line") to the first instruction of that line, and a bare integer
// to the pc itself. Debugger breakpoints and region start/end points use
// this.
func (p *Program) ResolveLocation(spec string) (int64, error) {
	if fn := p.FuncByName(spec); fn != nil {
		return fn.Entry, nil
	}
	if i := strings.LastIndexByte(spec, ':'); i >= 0 {
		file := spec[:i]
		line, err := strconv.Atoi(spec[i+1:])
		if err != nil {
			return 0, fmt.Errorf("isa: bad line in %q", spec)
		}
		for pc, in := range p.Code {
			if in.Line == int32(line) && int(in.File) < len(p.Files) &&
				(file == "" || strings.HasSuffix(p.Files[in.File], file)) {
				return int64(pc), nil
			}
		}
		return 0, fmt.Errorf("isa: no code at %s", spec)
	}
	if pc, err := strconv.ParseInt(spec, 10, 64); err == nil {
		if pc < 0 || pc >= int64(len(p.Code)) {
			return 0, fmt.Errorf("isa: pc %d out of range", pc)
		}
		return pc, nil
	}
	return 0, fmt.Errorf("isa: cannot resolve %q (want file:line, function, or pc)", spec)
}
