package isa

// This file gives the static register def/use sets of each instruction.
// Memory def/use sets depend on runtime effective addresses and are
// reported by the VM's tracer callbacks instead.

// RegUses appends the registers read by the instruction to dst and returns
// the extended slice. RZ is never reported: it is not a real dependence
// source. SP is reported for the stack operations that read it.
func (i Instr) RegUses(dst []Reg) []Reg {
	add := func(r Reg) {
		if r != RZ {
			dst = append(dst, r)
		}
	}
	switch i.Op {
	case NOP, MOVI, JMP, HALT, RET:
		// RET reads SP (address of the return slot).
		if i.Op == RET {
			add(SP)
		}
	case MOV:
		add(i.Rs1)
	case LOAD:
		add(i.Rs1)
	case STORE:
		add(i.Rs1)
		add(i.Rs2)
	case PUSH:
		add(i.Rs1)
		add(SP)
	case POP:
		add(SP)
	case ADD, SUB, MUL, DIV, MOD, AND, OR, XOR, SHL, SHR,
		CMPEQ, CMPNE, CMPLT, CMPLE:
		add(i.Rs1)
		add(i.Rs2)
	case ADDI, MULI:
		add(i.Rs1)
	case BR, BRZ:
		add(i.Rs1)
	case JMPI:
		add(i.Rs1)
	case CALL:
		add(SP)
	case CALLI:
		add(i.Rs1)
		add(SP)
	case SPAWN:
		add(i.Rs1)
	case JOIN, LOCK, UNLOCK, SIGNAL:
		add(i.Rs1)
	case WAIT:
		add(i.Rs1)
		add(i.Rs2)
	case SYSCALL:
		add(i.Rs1)
	case ASSERT:
		add(i.Rs1)
	}
	return dst
}

// RegDefs appends the registers written by the instruction to dst and
// returns the extended slice. Writes to RZ are discarded by the hardware
// and therefore not reported.
func (i Instr) RegDefs(dst []Reg) []Reg {
	add := func(r Reg) {
		if r != RZ {
			dst = append(dst, r)
		}
	}
	switch i.Op {
	case MOVI, MOV, LOAD,
		ADD, SUB, MUL, DIV, MOD, AND, OR, XOR, SHL, SHR,
		ADDI, MULI,
		CMPEQ, CMPNE, CMPLT, CMPLE:
		add(i.Rd)
	case PUSH:
		add(SP)
	case POP:
		add(i.Rd)
		add(SP)
	case CALL, CALLI:
		add(SP)
	case RET:
		add(SP)
	case SPAWN:
		add(i.Rd)
	case SYSCALL:
		add(i.Rd)
	}
	return dst
}
