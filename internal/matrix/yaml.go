// Package matrix turns scenario coverage from code into data: a
// declarative YAML scenario format (workload, thread counts, input
// sizes, schedule seeds, scheduler kind including Maple's active
// scheduler, fault-injection knobs, execution limits, and expected
// outcome assertions), a runner that expands the cross product and
// executes the cells in parallel under panic isolation and per-cell
// timeouts, and a deterministic pass/fail grid artifact (JSON and a
// rendered text table) with per-cell provenance.
//
// The YAML support is a deliberately small, dependency-free subset —
// block mappings and sequences by two-space indentation, flow lists
// [a, b] and flow maps {k: v}, quoted and bare scalars, # comments —
// which covers every scenario file shape the format defines and keeps
// parse errors positioned by line.
package matrix

import (
	"fmt"
	"sort"
	"strings"
)

// node is a parsed YAML value: map[string]any (mapping), []any
// (sequence), or string (scalar; typing happens at decode).
type node = any

// yamlError positions a parse failure.
type yamlError struct {
	Line int
	Msg  string
}

func (e *yamlError) Error() string { return fmt.Sprintf("yaml: line %d: %s", e.Line, e.Msg) }

func yerr(line int, format string, args ...any) error {
	return &yamlError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// yline is one significant source line.
type yline struct {
	n      int // 1-based source line number
	indent int
	text   string // content with indentation stripped, comments removed
}

// parseYAML parses the subset into a node tree (top level must be a
// mapping).
func parseYAML(src string) (map[string]any, error) {
	var lines []yline
	for i, raw := range strings.Split(src, "\n") {
		if strings.Contains(raw, "\t") {
			return nil, yerr(i+1, "tabs are not allowed in indentation; use spaces")
		}
		text := stripComment(raw)
		trimmed := strings.TrimLeft(text, " ")
		if trimmed == "" {
			continue
		}
		lines = append(lines, yline{n: i + 1, indent: len(text) - len(trimmed), text: strings.TrimRight(trimmed, " ")})
	}
	if len(lines) == 0 {
		return map[string]any{}, nil
	}
	v, next, err := parseBlock(lines, 0, lines[0].indent)
	if err != nil {
		return nil, err
	}
	if next != len(lines) {
		return nil, yerr(lines[next].n, "unexpected de-indented content")
	}
	m, ok := v.(map[string]any)
	if !ok {
		return nil, yerr(lines[0].n, "top level must be a mapping")
	}
	return m, nil
}

// stripComment removes a trailing # comment, respecting quotes.
func stripComment(s string) string {
	inQ := byte(0)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case inQ != 0:
			if c == inQ {
				inQ = 0
			}
		case c == '\'' || c == '"':
			inQ = c
		case c == '#' && (i == 0 || s[i-1] == ' '):
			return s[:i]
		}
	}
	return s
}

// parseBlock parses the run of lines at exactly this indentation into a
// mapping or sequence, returning the index of the first line it did not
// consume.
func parseBlock(lines []yline, i, indent int) (node, int, error) {
	if strings.HasPrefix(lines[i].text, "- ") || lines[i].text == "-" {
		return parseSequence(lines, i, indent)
	}
	return parseMapping(lines, i, indent)
}

func parseMapping(lines []yline, i, indent int) (node, int, error) {
	m := map[string]any{}
	for i < len(lines) {
		ln := lines[i]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, i, yerr(ln.n, "unexpected extra indentation")
		}
		if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
			return nil, i, yerr(ln.n, "sequence item inside a mapping")
		}
		key, rest, err := splitKey(ln)
		if err != nil {
			return nil, i, err
		}
		if _, dup := m[key]; dup {
			return nil, i, yerr(ln.n, "duplicate key %q", key)
		}
		if rest != "" {
			v, err := parseFlow(rest, ln.n)
			if err != nil {
				return nil, i, err
			}
			m[key] = v
			i++
			continue
		}
		// Value is the nested block on the following deeper lines; a key
		// with nothing nested is an empty scalar.
		i++
		if i >= len(lines) || lines[i].indent <= indent {
			m[key] = ""
			continue
		}
		v, next, err := parseBlock(lines, i, lines[i].indent)
		if err != nil {
			return nil, i, err
		}
		m[key] = v
		i = next
	}
	return m, i, nil
}

func parseSequence(lines []yline, i, indent int) (node, int, error) {
	var seq []any
	for i < len(lines) {
		ln := lines[i]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, i, yerr(ln.n, "unexpected extra indentation")
		}
		if !strings.HasPrefix(ln.text, "- ") && ln.text != "-" {
			return nil, i, yerr(ln.n, "expected sequence item")
		}
		rest := strings.TrimSpace(strings.TrimPrefix(ln.text, "-"))
		if rest == "" {
			// Item is the nested block on the following deeper lines.
			i++
			if i >= len(lines) || lines[i].indent <= indent {
				return nil, i, yerr(ln.n, "empty sequence item")
			}
			v, next, err := parseBlock(lines, i, lines[i].indent)
			if err != nil {
				return nil, i, err
			}
			seq = append(seq, v)
			i = next
			continue
		}
		if k, after, ok := tryKey(rest); ok {
			// "- key: ..." starts an inline mapping item; its remaining
			// keys sit on the following lines, indented past the dash.
			item := map[string]any{}
			if after != "" {
				v, err := parseFlow(after, ln.n)
				if err != nil {
					return nil, i, err
				}
				item[k] = v
			} else {
				item[k] = ""
			}
			i++
			if i < len(lines) && lines[i].indent > indent {
				more, next, err := parseMapping(lines, i, lines[i].indent)
				if err != nil {
					return nil, i, err
				}
				for mk, mv := range more.(map[string]any) {
					if _, dup := item[mk]; dup {
						return nil, i, yerr(ln.n, "duplicate key %q", mk)
					}
					item[mk] = mv
				}
				i = next
			}
			seq = append(seq, item)
			continue
		}
		v, err := parseFlow(rest, ln.n)
		if err != nil {
			return nil, i, err
		}
		seq = append(seq, v)
		i++
	}
	return seq, i, nil
}

// splitKey splits "key: value" (or "key:") on the first unquoted colon.
func splitKey(ln yline) (key, rest string, err error) {
	k, after, ok := tryKey(ln.text)
	if !ok {
		return "", "", yerr(ln.n, "expected 'key: value'")
	}
	return k, after, nil
}

// tryKey reports whether s begins with a mapping key ("key:" followed by
// end-of-line or a space).
func tryKey(s string) (key, rest string, ok bool) {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '"' || c == '\'' || c == '[' || c == '{' {
			return "", "", false // quoted/flow scalars are not keys here
		}
		if c == ':' {
			if i+1 == len(s) {
				return strings.TrimSpace(s[:i]), "", true
			}
			if s[i+1] == ' ' {
				return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+1:]), true
			}
			return "", "", false // "a:b" scalars (e.g. fault names) stay scalars
		}
	}
	return "", "", false
}

// parseFlow parses an inline value: flow sequence, flow mapping, or
// scalar.
func parseFlow(s string, line int) (node, error) {
	s = strings.TrimSpace(s)
	switch {
	case strings.HasPrefix(s, "["):
		if !strings.HasSuffix(s, "]") {
			return nil, yerr(line, "unterminated flow sequence %q", s)
		}
		var out []any
		for _, part := range splitFlow(s[1 : len(s)-1]) {
			v, err := parseFlow(part, line)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	case strings.HasPrefix(s, "{"):
		if !strings.HasSuffix(s, "}") {
			return nil, yerr(line, "unterminated flow mapping %q", s)
		}
		m := map[string]any{}
		for _, part := range splitFlow(s[1 : len(s)-1]) {
			k, rest, ok := tryKey(strings.TrimSpace(part))
			if !ok {
				// Flow maps also allow "k:v" without the space.
				if idx := strings.IndexByte(part, ':'); idx >= 0 {
					k, rest, ok = strings.TrimSpace(part[:idx]), strings.TrimSpace(part[idx+1:]), true
				}
			}
			if !ok || k == "" {
				return nil, yerr(line, "bad flow mapping entry %q", part)
			}
			if _, dup := m[k]; dup {
				return nil, yerr(line, "duplicate key %q", k)
			}
			v, err := parseFlow(rest, line)
			if err != nil {
				return nil, err
			}
			m[k] = v
		}
		return m, nil
	}
	return unquote(s), nil
}

// splitFlow splits a flow body on top-level commas.
func splitFlow(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var parts []string
	depth, start := 0, 0
	inQ := byte(0)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case inQ != 0:
			if c == inQ {
				inQ = 0
			}
		case c == '\'' || c == '"':
			inQ = c
		case c == '[' || c == '{':
			depth++
		case c == ']' || c == '}':
			depth--
		case c == ',' && depth == 0:
			parts = append(parts, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	parts = append(parts, strings.TrimSpace(s[start:]))
	return parts
}

func unquote(s string) string {
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			return s[1 : len(s)-1]
		}
	}
	return s
}

// sortedKeys returns a mapping's keys in stable order (parse trees are
// Go maps, so every walk that can produce an error or output sorts
// first).
func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
