package matrix

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"
)

// Cell statuses.
const (
	statusPass = "pass"
	statusFail = "fail"
	statusSkip = "skip"
)

// CellResult is one cell's provenance and verdict in the grid artifact.
// Every field except DurationMS is a deterministic function of the spec:
// identical invocations produce byte-identical grids (durations are
// emitted only when RunOptions.Timings asks for them).
type CellResult struct {
	Scenario  string `json:"scenario"`
	Workload  string `json:"workload"`
	Scheduler string `json:"scheduler"`
	Fault     string `json:"fault,omitempty"`
	Threads   int64  `json:"threads"`
	Size      int64  `json:"size"`
	Quantum   int64  `json:"quantum"`
	Seed      int64  `json:"seed"`

	// Outcome of the recorded run: "exit", "failure", or "error".
	Outcome string `json:"outcome"`
	// Exposed marks cells that captured the bug's symptom.
	Exposed bool `json:"exposed,omitempty"`
	// Failure is the captured symptom ("thread 2 at pc 15: ...").
	Failure string `json:"failure,omitempty"`
	// ExitCode classifies the cell per the shared CLI exit-code table.
	ExitCode int `json:"exit_code"`
	// Pinball is the captured pinball's content digest.
	Pinball string `json:"pinball,omitempty"`
	// Replay is the divergence verdict: "clean" or "diverged".
	Replay string `json:"replay,omitempty"`
	// Output is the program's write() stream from the verified replay.
	Output []int64 `json:"output,omitempty"`
	// Slice facts (expect.slice: closed).
	SliceMembers int  `json:"slice_members,omitempty"`
	SliceTrace   int  `json:"slice_trace,omitempty"`
	SliceClosed  bool `json:"slice_closed,omitempty"`
	// Flight-recorder facts (scenarios with ring_bytes set).
	RingEvicted int   `json:"ring_evicted,omitempty"`
	RingGap     int64 `json:"ring_gap,omitempty"`
	// Slice edge-provenance breakdown (expect.slice: provenance).
	ProvExactEdges     int `json:"prov_exact_edges,omitempty"`
	ProvBridgedEdges   int `json:"prov_bridged_edges,omitempty"`
	ProvEstimatedEdges int `json:"prov_estimated_edges,omitempty"`
	// FaultDetected reports which defence layer caught an injected
	// fault ("detected:decode|validate|replay|fault", "missed",
	// "inapplicable").
	FaultDetected string `json:"fault_detected,omitempty"`
	// Maple exploration accounting.
	MapleAttempts  int `json:"maple_attempts,omitempty"`
	MaplePredicted int `json:"maple_predicted,omitempty"`

	Status string `json:"status"`
	Reason string `json:"reason,omitempty"`
	// DurationMS is wall-clock and deliberately excluded from the
	// artifact unless timings are requested.
	DurationMS int64 `json:"duration_ms,omitempty"`
}

// Check is one evaluated scenario-level assertion.
type Check struct {
	Name string `json:"name"`
	OK   bool   `json:"ok"`
	Info string `json:"info,omitempty"`
}

// ScenarioSummary aggregates a scenario's cells.
type ScenarioSummary struct {
	Name    string  `json:"name"`
	Cells   int     `json:"cells"`
	Pass    int     `json:"pass"`
	Fail    int     `json:"fail"`
	Skip    int     `json:"skip,omitempty"`
	Exposed int     `json:"exposed,omitempty"`
	Checks  []Check `json:"checks,omitempty"`
}

// Failed reports whether any cell or aggregate check failed.
func (s *ScenarioSummary) Failed() bool {
	if s.Fail > 0 {
		return true
	}
	for _, c := range s.Checks {
		if !c.OK {
			return true
		}
	}
	return false
}

// Grid is the pass/fail artifact of one matrix run.
type Grid struct {
	Suite string `json:"suite"`
	// SpecDigest fingerprints the expanded spec (axes + assertions).
	SpecDigest string            `json:"spec_digest"`
	Cells      []*CellResult     `json:"cells"`
	Scenarios  []ScenarioSummary `json:"scenarios"`
	Counts     struct {
		Cells int `json:"cells"`
		Pass  int `json:"pass"`
		Fail  int `json:"fail"`
		Skip  int `json:"skip"`
	} `json:"counts"`
	Pass bool `json:"pass"`
	// Digest is an FNV-1a fingerprint of the artifact's deterministic
	// content, for quick grid-to-grid comparison.
	Digest string `json:"digest"`

	timings bool
}

// assemble orders the per-cell results, evaluates scenario-level
// aggregate assertions, and seals the grid with its digest.
func assemble(spec *Spec, cells []*Cell, results []*CellResult, timings bool) *Grid {
	g := &Grid{Suite: spec.Suite, SpecDigest: spec.Digest(), Cells: results, timings: timings}
	byScenario := map[string][]*CellResult{}
	for _, res := range results {
		byScenario[res.Scenario] = append(byScenario[res.Scenario], res)
		g.Counts.Cells++
		switch res.Status {
		case statusPass:
			g.Counts.Pass++
		case statusSkip:
			g.Counts.Skip++
		default:
			g.Counts.Fail++
		}
	}
	for _, sc := range spec.Scenarios {
		sum := ScenarioSummary{Name: sc.Name}
		for _, res := range byScenario[sc.Name] {
			sum.Cells++
			switch res.Status {
			case statusPass:
				sum.Pass++
			case statusSkip:
				sum.Skip++
			default:
				sum.Fail++
			}
			if res.Exposed {
				sum.Exposed++
			}
		}
		sum.Checks = aggregateChecks(sc, byScenario[sc.Name])
		g.Scenarios = append(g.Scenarios, sum)
	}
	g.Pass = g.Counts.Fail == 0
	for _, s := range g.Scenarios {
		if s.Failed() {
			g.Pass = false
		}
	}
	g.Digest = g.digest()
	return g
}

// aggregateChecks evaluates the scenario-level assertions: bug-exposure
// aggregation (found: any|all|none) and schedule-independent output
// (output: identical).
func aggregateChecks(sc *Scenario, results []*CellResult) []Check {
	var checks []Check
	if f := sc.Expect.Found; f != "" {
		exposed, counted := 0, 0
		for _, r := range results {
			if r.Status == statusSkip {
				continue
			}
			counted++
			if r.Exposed {
				exposed++
			}
		}
		ok := false
		switch f {
		case "any":
			ok = exposed > 0
		case "all":
			ok = exposed == counted && counted > 0
		case "none":
			ok = exposed == 0
		}
		checks = append(checks, Check{
			Name: "found:" + f, OK: ok,
			Info: fmt.Sprintf("%d/%d cells exposed the bug", exposed, counted),
		})
	}
	if sc.Expect.Output == "identical" {
		var want []int64
		ok, n := true, 0
		for _, r := range results {
			if r.Outcome != "exit" || r.Output == nil {
				continue
			}
			if n == 0 {
				want = r.Output
			} else if !int64sEqual(want, r.Output) {
				ok = false
			}
			n++
		}
		checks = append(checks, Check{
			Name: "output:identical", OK: ok && n > 0,
			Info: fmt.Sprintf("%d clean cells compared", n),
		})
	}
	return checks
}

func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// EncodeJSON writes the grid artifact. Without timings the bytes are a
// pure function of the spec and the recorded executions.
func (g *Grid) EncodeJSON(w io.Writer) error {
	out := *g
	if !g.timings {
		cells := make([]*CellResult, len(g.Cells))
		for i, c := range g.Cells {
			cc := *c
			cc.DurationMS = 0
			cells[i] = &cc
		}
		out.Cells = cells
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}

// digest fingerprints the deterministic artifact content.
func (g *Grid) digest() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "suite=%s spec=%s\n", g.Suite, g.SpecDigest)
	for _, c := range g.Cells {
		fmt.Fprintf(h, "%s|%s|%s|%d|%d|%d|%d|%s|%d|%s|%s|%v|%d|%d|%v|%d|%d|%d|%d|%d|%s|%s|%s\n",
			c.Scenario, c.Scheduler, c.Fault, c.Threads, c.Size, c.Quantum, c.Seed,
			c.Outcome, c.ExitCode, c.Pinball, c.Replay, c.Output,
			c.SliceMembers, c.SliceTrace, c.SliceClosed,
			c.RingEvicted, c.RingGap, c.ProvExactEdges, c.ProvBridgedEdges, c.ProvEstimatedEdges,
			c.FaultDetected, c.Status, c.Reason)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// glyph is the one-character cell rendering in the text table.
func glyph(c *CellResult) byte {
	switch {
	case c.Status == statusSkip:
		return 's'
	case c.Status == statusFail:
		return 'F'
	case c.Exposed:
		return 'B' // pass, bug captured
	default:
		return '.'
	}
}

// RenderText writes the human-readable grid: one row per non-seed axis
// combination, one column per seed, then the scenario and suite
// summaries.
func (g *Grid) RenderText(w io.Writer) error {
	type rowKey struct {
		scenario, axes string
	}
	rows := map[rowKey][]*CellResult{}
	var order []rowKey
	seedSet := map[int64]bool{}
	for i, c := range g.Cells {
		k := rowKey{c.Scenario, axesOf(c)}
		if _, ok := rows[k]; !ok {
			order = append(order, k)
		}
		rows[k] = append(rows[k], g.Cells[i])
		seedSet[c.Seed] = true
	}
	seeds := make([]int64, 0, len(seedSet))
	for s := range seedSet {
		seeds = append(seeds, s)
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })

	width := 0
	for _, k := range order {
		if n := len(k.scenario) + 1 + len(k.axes); n > width {
			width = n
		}
	}
	fmt.Fprintf(w, "suite %s  (spec %s)\n", g.Suite, g.SpecDigest)
	fmt.Fprintf(w, "%-*s  seeds %v\n", width, "", seeds)
	for _, k := range order {
		byseed := map[int64]*CellResult{}
		for _, c := range rows[k] {
			byseed[c.Seed] = c
		}
		line := make([]byte, 0, len(seeds))
		for _, s := range seeds {
			if c, ok := byseed[s]; ok {
				line = append(line, glyph(c))
			} else {
				line = append(line, ' ')
			}
		}
		fmt.Fprintf(w, "%-*s  %s\n", width, k.scenario+" "+k.axes, line)
	}
	fmt.Fprintln(w)
	for _, s := range g.Scenarios {
		verdict := "pass"
		if s.Failed() {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "%-20s %3d cells  %3d pass %3d fail %3d skip  %s", s.Name, s.Cells, s.Pass, s.Fail, s.Skip, verdict)
		var notes []string
		for _, c := range s.Checks {
			mark := "ok"
			if !c.OK {
				mark = "FAIL"
			}
			notes = append(notes, fmt.Sprintf("%s %s (%s)", c.Name, mark, c.Info))
		}
		if len(notes) > 0 {
			fmt.Fprintf(w, "  [%s]", strings.Join(notes, "; "))
		}
		fmt.Fprintln(w)
	}
	verdict := "PASS"
	if !g.Pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "total %d cells: %d pass, %d fail, %d skip — %s (grid %s)\n",
		g.Counts.Cells, g.Counts.Pass, g.Counts.Fail, g.Counts.Skip, verdict, g.Digest)
	// Failed cells get their reasons spelled out under the table.
	for _, c := range g.Cells {
		if c.Status == statusFail {
			fmt.Fprintf(w, "  FAIL %s %s seed=%d: %s\n", c.Scenario, axesOf(c), c.Seed, c.Reason)
		}
	}
	return nil
}

// axesOf reconstructs the non-seed axis label from a result (the
// CellResult is self-contained so grids render without the spec).
func axesOf(c *CellResult) string {
	s := fmt.Sprintf("t%d s%d q%d %s", c.Threads, c.Size, c.Quantum, c.Scheduler)
	if c.Fault != "" {
		s += " " + c.Fault
	}
	return s
}
