package matrix

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// runTestSpec is small enough for unit tests but exercises every stage:
// a Maple bug hunt with slice assertions, a random-scheduler smoke row
// with schedule-independent output, and a fault-injection row.
const runTestSpec = `
suite: runtest
scenarios:
  - name: hunt
    workload: pbzip2
    threads: [3]
    sizes: [40]
    seeds: [1, 2]
    schedulers: maple
    timeout: 30s
    expect:
      found: all
      slice: closed
      min_members: 2
  - name: smoke
    workload: blackscholes
    sizes: [16]
    seeds: [1, 2]
    timeout: 30s
    expect:
      outcome: exit
      output: identical
      exit_code: 0
  - name: fault
    workload: blackscholes
    sizes: [16]
    seeds: [1]
    faults: [file:flip-magic]
    timeout: 30s
`

func runGrid(t *testing.T, workers int) *Grid {
	t.Helper()
	spec, err := ParseSpec(runTestSpec)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	grid, err := Run(spec, RunOptions{Workers: workers})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return grid
}

func TestRunGridFacts(t *testing.T) {
	g := runGrid(t, 4)
	if !g.Pass {
		var buf bytes.Buffer
		g.RenderText(&buf)
		t.Fatalf("grid failed:\n%s", buf.String())
	}
	if g.Counts.Cells != 5 {
		t.Fatalf("cells = %d, want 5", g.Counts.Cells)
	}
	for _, c := range g.Cells {
		switch c.Scenario {
		case "hunt":
			if !c.Exposed || c.Outcome != "failure" {
				t.Errorf("hunt seed %d: exposed=%v outcome=%s", c.Seed, c.Exposed, c.Outcome)
			}
			if c.Replay != "clean" {
				t.Errorf("hunt seed %d: replay=%q", c.Seed, c.Replay)
			}
			if !c.SliceClosed || c.SliceMembers < 2 || c.SliceMembers >= c.SliceTrace {
				t.Errorf("hunt seed %d: slice members=%d trace=%d closed=%v",
					c.Seed, c.SliceMembers, c.SliceTrace, c.SliceClosed)
			}
			if c.Pinball == "" || c.Failure == "" {
				t.Errorf("hunt seed %d: missing provenance (pinball=%q failure=%q)", c.Seed, c.Pinball, c.Failure)
			}
		case "smoke":
			if c.Outcome != "exit" || c.ExitCode != CellOK || len(c.Output) == 0 {
				t.Errorf("smoke seed %d: outcome=%s exit=%d output=%v", c.Seed, c.Outcome, c.ExitCode, c.Output)
			}
		case "fault":
			if c.FaultDetected != "detected:decode" {
				t.Errorf("fault cell: detected=%q, want detected:decode", c.FaultDetected)
			}
			if c.ExitCode != CellBadPinball {
				t.Errorf("fault cell: exit=%d, want %d", c.ExitCode, CellBadPinball)
			}
		}
	}
	// Scenario summaries carry the aggregate checks.
	for _, s := range g.Scenarios {
		if s.Name == "hunt" {
			found := false
			for _, c := range s.Checks {
				if c.Name == "found:all" && c.OK {
					found = true
				}
			}
			if !found {
				t.Errorf("hunt summary missing passing found:all check: %+v", s.Checks)
			}
		}
		if s.Name == "smoke" {
			ok := false
			for _, c := range s.Checks {
				if c.Name == "output:identical" && c.OK {
					ok = true
				}
			}
			if !ok {
				t.Errorf("smoke summary missing passing output:identical check: %+v", s.Checks)
			}
		}
	}
}

// TestRunDeterministic is the acceptance criterion: identical
// invocations produce byte-identical grid artifacts, regardless of
// worker count.
func TestRunDeterministic(t *testing.T) {
	var blobs [][]byte
	for _, workers := range []int{1, 4} {
		g := runGrid(t, workers)
		var buf bytes.Buffer
		if err := g.EncodeJSON(&buf); err != nil {
			t.Fatalf("EncodeJSON: %v", err)
		}
		blobs = append(blobs, buf.Bytes())
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Fatalf("grid artifacts differ between runs:\n--- workers=1\n%s\n--- workers=4\n%s", blobs[0], blobs[1])
	}
}

// TestGridJSONShape is the golden test for the artifact schema: the
// exact JSON keys downstream tooling may rely on.
func TestGridJSONShape(t *testing.T) {
	g := runGrid(t, 4)
	var buf bytes.Buffer
	if err := g.EncodeJSON(&buf); err != nil {
		t.Fatalf("EncodeJSON: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("artifact is not JSON: %v", err)
	}
	for _, k := range []string{"suite", "spec_digest", "cells", "scenarios", "counts", "pass", "digest"} {
		if _, ok := doc[k]; !ok {
			t.Errorf("artifact missing top-level key %q", k)
		}
	}
	cells := doc["cells"].([]any)
	cell := cells[0].(map[string]any)
	for _, k := range []string{"scenario", "workload", "scheduler", "threads", "size", "quantum", "seed", "outcome", "exit_code", "status"} {
		if _, ok := cell[k]; !ok {
			t.Errorf("cell missing key %q (got %v)", k, cell)
		}
	}
	// Timings stay out of the artifact unless asked for.
	if _, ok := cell["duration_ms"]; ok {
		t.Error("duration_ms leaked into a timing-free artifact")
	}
	if doc["digest"] != g.Digest {
		t.Errorf("digest mismatch: %v vs %s", doc["digest"], g.Digest)
	}
}

func TestRenderTextGrid(t *testing.T) {
	g := runGrid(t, 4)
	var buf bytes.Buffer
	if err := g.RenderText(&buf); err != nil {
		t.Fatalf("RenderText: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"suite runtest",
		"hunt t3 s40 q20 maple",
		"BB", // both hunt seeds captured the bug
		"smoke t0 s16 q20 random",
		"found:all ok (2/2 cells exposed the bug)",
		"output:identical ok",
		"PASS (grid " + g.Digest + ")",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered grid missing %q:\n%s", want, out)
		}
	}
}

// TestRunFailingAssertionFailsGrid: a scenario expecting a bug that a
// clean workload cannot produce must fail its cells and the grid.
func TestRunFailingAssertionFailsGrid(t *testing.T) {
	spec, err := ParseSpec(`
scenarios:
  - name: impossible
    workload: blackscholes
    sizes: [16]
    seeds: [1]
    timeout: 30s
    expect:
      outcome: failure
`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Run(spec, RunOptions{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if g.Pass || g.Counts.Fail != 1 {
		t.Fatalf("grid pass=%v fail=%d, want a failing cell", g.Pass, g.Counts.Fail)
	}
	c := g.Cells[0]
	if c.Status != statusFail || !strings.Contains(c.Reason, "want failure") {
		t.Fatalf("cell status=%s reason=%q", c.Status, c.Reason)
	}
}

// TestRunFileWorkload compiles a scenario workload from a .c source
// path relative to the spec's directory.
func TestRunFileWorkload(t *testing.T) {
	dir := t.TempDir()
	src := `
int main() {
  write(42);
  return 0;
}
`
	if err := writeFile(dir+"/tiny.c", src); err != nil {
		t.Fatal(err)
	}
	spec, err := ParseSpec(`
scenarios:
  - name: filewl
    workload: tiny.c
    timeout: 30s
    expect:
      outcome: exit
`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Run(spec, RunOptions{BaseDir: dir})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !g.Pass {
		var buf bytes.Buffer
		g.RenderText(&buf)
		t.Fatalf("file workload grid failed:\n%s", buf.String())
	}
	if out := g.Cells[0].Output; len(out) != 1 || out[0] != 42 {
		t.Fatalf("output = %v, want [42]", out)
	}
}
