package matrix

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseYAMLBlockShapes(t *testing.T) {
	src := `
suite: demo   # trailing comment
# full-line comment
defaults:
  quantum: 20
  seeds: [1, 2, 3]
scenarios:
  - name: one
    workload: pbzip2
    expect:
      found: all
  - name: two
    workload: aget
    faults:
      - file:flip-magic
      - pinball:swap-quantum-tid
`
	got, err := parseYAML(src)
	if err != nil {
		t.Fatalf("parseYAML: %v", err)
	}
	want := map[string]any{
		"suite": "demo",
		"defaults": map[string]any{
			"quantum": "20",
			"seeds":   []any{"1", "2", "3"},
		},
		"scenarios": []any{
			map[string]any{
				"name":     "one",
				"workload": "pbzip2",
				"expect":   map[string]any{"found": "all"},
			},
			map[string]any{
				"name":     "two",
				"workload": "aget",
				"faults":   []any{"file:flip-magic", "pinball:swap-quantum-tid"},
			},
		},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tree mismatch:\n got  %#v\n want %#v", got, want)
	}
}

func TestParseYAMLFlowAndQuotes(t *testing.T) {
	src := `
a: [1, [2, 3], {k: v}]
b: "hash # not a comment"
c: 'single'
d: {x: 1, y: [2]}
e: plain:scalar
`
	got, err := parseYAML(src)
	if err != nil {
		t.Fatalf("parseYAML: %v", err)
	}
	if want := []any{"1", []any{"2", "3"}, map[string]any{"k": "v"}}; !reflect.DeepEqual(got["a"], want) {
		t.Errorf("a = %#v, want %#v", got["a"], want)
	}
	if got["b"] != "hash # not a comment" {
		t.Errorf("b = %q", got["b"])
	}
	if got["c"] != "single" {
		t.Errorf("c = %q", got["c"])
	}
	if want := map[string]any{"x": "1", "y": []any{"2"}}; !reflect.DeepEqual(got["d"], want) {
		t.Errorf("d = %#v", got["d"])
	}
	// "a:b" without a trailing space is a scalar, not a nested key —
	// that is what keeps fault names like pinball:swap-quantum-tid whole.
	if got["e"] != "plain:scalar" {
		t.Errorf("e = %q", got["e"])
	}
}

func TestParseYAMLEmptyDoc(t *testing.T) {
	got, err := parseYAML("\n# only comments\n\n")
	if err != nil {
		t.Fatalf("parseYAML: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("want empty mapping, got %#v", got)
	}
}

func TestParseYAMLErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"tab", "a:\n\tb: 1\n", "tabs are not allowed"},
		{"dup-key", "a: 1\na: 2\n", "duplicate key"},
		{"bad-indent", "a:\n  b: 1\n   c: 2\n", "extra indentation"},
		{"seq-in-map", "a: 1\n- b\n", "sequence item inside a mapping"},
		{"no-colon", "just a scalar line\n", "expected 'key: value'"},
		{"unterminated-flow", "a: [1, 2\n", "unterminated flow sequence"},
		{"unterminated-map", "a: {k: v\n", "unterminated flow mapping"},
		{"empty-seq-item", "a:\n  -\n", "empty sequence item"},
		{"top-seq", "- a\n- b\n", "top level must be a mapping"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseYAML(tc.src)
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestParseYAMLErrorsCarryLineNumbers(t *testing.T) {
	_, err := parseYAML("a: 1\nb: 2\nb: 3\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("want line-3 error, got %v", err)
	}
}
