package matrix

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// Spec is a parsed scenario matrix file: a suite of scenarios, each of
// which expands into the cross product of its axes.
type Spec struct {
	// Suite names the matrix (defaults to the file's base name).
	Suite string
	// Scenarios in file order.
	Scenarios []*Scenario
}

// Scenario is one declarative scenario: a workload plus axis lists whose
// cross product becomes the cells, execution knobs, and the expected
// outcome assertions.
type Scenario struct {
	// Name identifies the scenario in the grid (required, unique).
	Name string
	// Workload names a registered workload (internal/workloads) or a
	// mini-C source file path relative to the spec file.
	Workload string

	// Axes. Every list must be non-empty after defaults are applied.
	Threads    []int64 // 0 = the workload's DefaultThreads
	Sizes      []int64
	Seeds      []int64  // list or "lo..hi" range
	Quanta     []int64  // mean preemption quantum
	Schedulers []string // "random" | "maple"
	Faults     []string // "none" | "file:<name>" | "pinball:<name>"

	// Execution knobs.
	Region      Region // skip/length region selection (random scheduler)
	Limits      Limits // per-run execution bounds
	Timeout     time.Duration
	ProfileRuns int // maple profiling runs (0 = maple default)
	// RingBytes/Sample switch the cell recordings to flight-recorder
	// mode: retained content is bounded by the byte budget and/or
	// sampled 1-in-N, evicted windows are bridged on replay. Window
	// sets the ring window granularity in instructions (0 = default).
	RingBytes int64
	Sample    int64
	Window    int64

	// Expect holds the assertions evaluated against each cell and the
	// scenario's aggregate.
	Expect Expect
}

// Region selects the recorded region in PinPlay skip/length form.
type Region struct {
	Skip   int64 `json:"skip,omitempty"`
	Length int64 `json:"length,omitempty"`
}

// Limits bounds each cell's executions.
type Limits struct {
	// Steps is the instruction budget per run (0 = scenario default).
	Steps int64
	// Pages caps replay resident memory in pages (0 = none).
	Pages int
}

// Expect declares a scenario's assertions. Zero values mean "don't
// check" except where noted.
type Expect struct {
	// Outcome constrains how each cell's recorded run must end:
	// "exit" (clean stop), "failure" (the bug's symptom), or "any"
	// (default — per-cell outcome free, aggregate via Found).
	Outcome string
	// Found aggregates bug exposure across the scenario's cells:
	// "any" (at least one cell captured a failure), "all", "none",
	// or "" (no aggregate check).
	Found string
	// Replay: "clean" (default — replay every captured pinball and
	// require zero divergences), or "none" to skip replay.
	Replay string
	// Slice: "closed" computes the failure slice of every cell that
	// captured a failure and checks non-emptiness, the closure
	// properties, and that the slice is smaller than the region;
	// "provenance" additionally requires flight-recorder slices to be
	// annotated (every gap-crossing edge tagged, closure's provenance
	// check green) and records the edge-provenance breakdown; "none"
	// (default) skips slicing.
	Slice string
	// MinMembers is the minimum failure-slice size (with Slice:closed).
	MinMembers int
	// Fault: "detected" (default when a cell has a fault axis value
	// other than none) requires the injected corruption to surface as a
	// typed load/validate error or a failed replay; "none" skips.
	Fault string
	// Output: "identical" requires all clean-exit cells of the scenario
	// to produce identical program output (a schedule-independence
	// check); "" skips.
	Output string
	// ExitCode, when >= 0, is the exact cell exit code every cell must
	// report. Use -1 (default) to skip.
	ExitCode int
}

// SchedulerRandom and SchedulerMaple are the scheduler axis values.
const (
	SchedulerRandom = "random"
	SchedulerMaple  = "maple"
)

// FaultNone is the fault axis value meaning "no injection".
const FaultNone = "none"

// Cell is one expanded point of a scenario's cross product.
type Cell struct {
	Scenario *Scenario
	// Index is the cell's position in the scenario's deterministic
	// expansion order.
	Index     int
	Scheduler string
	Fault     string
	Threads   int64
	Size      int64
	Quantum   int64
	Seed      int64
}

// Axes renders the cell's non-seed coordinates for grouping ("t3 s40
// q20 maple" or "t3 s40 q20 random file:flip-magic").
func (c *Cell) Axes() string {
	s := fmt.Sprintf("t%d s%d q%d %s", c.Threads, c.Size, c.Quantum, c.Scheduler)
	if c.Fault != FaultNone {
		s += " " + c.Fault
	}
	return s
}

// LoadSpec reads and parses a scenario matrix file.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("matrix: %w", err)
	}
	spec, err := ParseSpec(string(data))
	if err != nil {
		return nil, fmt.Errorf("matrix: %s: %w", path, err)
	}
	if spec.Suite == "" {
		spec.Suite = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}
	return spec, nil
}

// ParseSpec parses scenario matrix YAML.
func ParseSpec(src string) (*Spec, error) {
	root, err := parseYAML(src)
	if err != nil {
		return nil, err
	}
	spec := &Spec{}
	var defaults map[string]any
	for _, k := range sortedKeys(root) {
		switch k {
		case "suite":
			if spec.Suite, err = scalarOf(root[k], "suite"); err != nil {
				return nil, err
			}
		case "defaults":
			m, ok := root[k].(map[string]any)
			if !ok {
				return nil, fmt.Errorf("defaults must be a mapping")
			}
			defaults = m
		case "scenarios":
			// handled below, after defaults are known
		default:
			return nil, fmt.Errorf("unknown top-level key %q", k)
		}
	}
	raw, ok := root["scenarios"].([]any)
	if !ok || len(raw) == 0 {
		return nil, fmt.Errorf("spec needs a non-empty 'scenarios' sequence")
	}
	if defaults != nil {
		if err := checkScenarioKeys(defaults, true); err != nil {
			return nil, fmt.Errorf("defaults: %w", err)
		}
	}
	seen := map[string]bool{}
	for i, rs := range raw {
		m, ok := rs.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("scenario %d: must be a mapping", i)
		}
		sc, err := decodeScenario(m, defaults)
		if err != nil {
			name, _ := scalarOf(m["name"], "name")
			if name == "" {
				name = fmt.Sprintf("#%d", i)
			}
			return nil, fmt.Errorf("scenario %s: %w", name, err)
		}
		if seen[sc.Name] {
			return nil, fmt.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		spec.Scenarios = append(spec.Scenarios, sc)
	}
	return spec, nil
}

var scenarioKeys = map[string]bool{
	"name": true, "workload": true, "threads": true, "sizes": true,
	"seeds": true, "quantum": true, "schedulers": true, "faults": true,
	"region": true, "limits": true, "timeout": true, "profile_runs": true,
	"ring_bytes": true, "sample": true, "window": true,
	"expect": true,
}

func checkScenarioKeys(m map[string]any, isDefaults bool) error {
	for _, k := range sortedKeys(m) {
		if !scenarioKeys[k] {
			return fmt.Errorf("unknown key %q", k)
		}
		if isDefaults && (k == "name" || k == "workload") {
			return fmt.Errorf("%q is not allowed in defaults", k)
		}
	}
	return nil
}

// decodeScenario decodes one scenario mapping, with defaults filling
// unset keys.
func decodeScenario(m, defaults map[string]any) (*Scenario, error) {
	if err := checkScenarioKeys(m, false); err != nil {
		return nil, err
	}
	get := func(k string) (any, bool) {
		if v, ok := m[k]; ok {
			return v, true
		}
		v, ok := defaults[k]
		return v, ok
	}
	sc := &Scenario{
		Threads:    []int64{0},
		Sizes:      []int64{0},
		Seeds:      []int64{1},
		Quanta:     []int64{20},
		Schedulers: []string{SchedulerRandom},
		Faults:     []string{FaultNone},
		Timeout:    60 * time.Second,
		Expect:     Expect{Outcome: "any", Replay: "clean", ExitCode: -1},
	}
	var err error
	if sc.Name, err = scalarOf(m["name"], "name"); err != nil || sc.Name == "" {
		return nil, fmt.Errorf("scenario needs a name")
	}
	if sc.Workload, err = scalarOf(m["workload"], "workload"); err != nil || sc.Workload == "" {
		return nil, fmt.Errorf("scenario needs a workload")
	}
	if v, ok := get("threads"); ok {
		if sc.Threads, err = int64ListOf(v, "threads"); err != nil {
			return nil, err
		}
	}
	if v, ok := get("sizes"); ok {
		if sc.Sizes, err = int64ListOf(v, "sizes"); err != nil {
			return nil, err
		}
	}
	if v, ok := get("seeds"); ok {
		if sc.Seeds, err = seedsOf(v); err != nil {
			return nil, err
		}
	}
	if v, ok := get("quantum"); ok {
		if sc.Quanta, err = int64ListOf(v, "quantum"); err != nil {
			return nil, err
		}
	}
	if v, ok := get("schedulers"); ok {
		kinds, err := stringListOf(v, "schedulers")
		if err != nil {
			return nil, err
		}
		for _, k := range kinds {
			if k != SchedulerRandom && k != SchedulerMaple {
				return nil, fmt.Errorf("unknown scheduler %q (want %s or %s)", k, SchedulerRandom, SchedulerMaple)
			}
		}
		sc.Schedulers = kinds
	}
	if v, ok := get("faults"); ok {
		faults, err := stringListOf(v, "faults")
		if err != nil {
			return nil, err
		}
		for _, f := range faults {
			if err := checkFaultName(f); err != nil {
				return nil, err
			}
		}
		sc.Faults = faults
	}
	if v, ok := get("region"); ok {
		rm, ok := v.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("region must be a mapping {skip, length}")
		}
		for _, k := range sortedKeys(rm) {
			var err error
			switch k {
			case "skip":
				sc.Region.Skip, err = int64Of(rm[k], "region.skip")
			case "length":
				sc.Region.Length, err = int64Of(rm[k], "region.length")
			default:
				err = fmt.Errorf("unknown region key %q", k)
			}
			if err != nil {
				return nil, err
			}
		}
	}
	if v, ok := get("limits"); ok {
		lm, ok := v.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("limits must be a mapping {steps, pages}")
		}
		for _, k := range sortedKeys(lm) {
			var err error
			switch k {
			case "steps":
				sc.Limits.Steps, err = int64Of(lm[k], "limits.steps")
			case "pages":
				var p int64
				p, err = int64Of(lm[k], "limits.pages")
				sc.Limits.Pages = int(p)
			default:
				err = fmt.Errorf("unknown limits key %q", k)
			}
			if err != nil {
				return nil, err
			}
		}
	}
	if v, ok := get("timeout"); ok {
		s, err := scalarOf(v, "timeout")
		if err != nil {
			return nil, err
		}
		if sc.Timeout, err = time.ParseDuration(s); err != nil || sc.Timeout <= 0 {
			return nil, fmt.Errorf("bad timeout %q", s)
		}
	}
	if v, ok := get("profile_runs"); ok {
		p, err := int64Of(v, "profile_runs")
		if err != nil {
			return nil, err
		}
		sc.ProfileRuns = int(p)
	}
	if v, ok := get("ring_bytes"); ok {
		if sc.RingBytes, err = int64Of(v, "ring_bytes"); err != nil {
			return nil, err
		}
		if sc.RingBytes < 0 {
			return nil, fmt.Errorf("ring_bytes must be >= 0")
		}
	}
	if v, ok := get("window"); ok {
		if sc.Window, err = int64Of(v, "window"); err != nil {
			return nil, err
		}
		if sc.Window < 0 {
			return nil, fmt.Errorf("window must be >= 0")
		}
	}
	if v, ok := get("sample"); ok {
		if sc.Sample, err = int64Of(v, "sample"); err != nil {
			return nil, err
		}
		if sc.Sample < 0 {
			return nil, fmt.Errorf("sample must be >= 0")
		}
	}
	if sc.RingBytes > 0 || sc.Sample > 1 {
		for _, s := range sc.Schedulers {
			if s == SchedulerMaple {
				return nil, fmt.Errorf("ring_bytes/sample require the random scheduler: the flight recorder's resume recipe cannot capture maple's forcing scheduler")
			}
		}
	}
	if v, ok := get("expect"); ok {
		if err := decodeExpect(v, &sc.Expect); err != nil {
			return nil, err
		}
	}
	// A fault axis without an explicit fault assertion defaults to
	// "detected" — injecting corruption that nothing checks is a
	// scenario-authoring mistake.
	if sc.Expect.Fault == "" {
		sc.Expect.Fault = "none"
		for _, f := range sc.Faults {
			if f != FaultNone {
				sc.Expect.Fault = "detected"
			}
		}
	}
	return sc, nil
}

func decodeExpect(v any, e *Expect) error {
	m, ok := v.(map[string]any)
	if !ok {
		return fmt.Errorf("expect must be a mapping")
	}
	enum := func(k, got string, allowed ...string) (string, error) {
		for _, a := range allowed {
			if got == a {
				return got, nil
			}
		}
		return "", fmt.Errorf("expect.%s: %q is not one of %s", k, got, strings.Join(allowed, "|"))
	}
	for _, k := range sortedKeys(m) {
		s, err := scalarOf(m[k], "expect."+k)
		if err != nil {
			return err
		}
		switch k {
		case "outcome":
			e.Outcome, err = enum(k, s, "exit", "failure", "any")
		case "found":
			e.Found, err = enum(k, s, "any", "all", "none", "")
		case "replay":
			e.Replay, err = enum(k, s, "clean", "none")
		case "slice":
			e.Slice, err = enum(k, s, "closed", "provenance", "none")
		case "min_members":
			var n int64
			n, err = int64Of(m[k], "expect.min_members")
			e.MinMembers = int(n)
		case "fault":
			e.Fault, err = enum(k, s, "detected", "none")
		case "output":
			e.Output, err = enum(k, s, "identical", "")
		case "exit_code":
			var n int64
			n, err = int64Of(m[k], "expect.exit_code")
			e.ExitCode = int(n)
		default:
			err = fmt.Errorf("unknown expect key %q", k)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func checkFaultName(f string) error {
	if f == FaultNone {
		return nil
	}
	kind, name, ok := strings.Cut(f, ":")
	if !ok || name == "" || (kind != "file" && kind != "pinball") {
		return fmt.Errorf("bad fault %q (want none, file:<name> or pinball:<name>)", f)
	}
	for _, known := range FaultNames() {
		if f == known {
			return nil
		}
	}
	return fmt.Errorf("unknown fault %q (drmatrix faults lists the registry)", f)
}

// Expand returns the scenario's cells in deterministic nested-axis
// order: scheduler, fault, threads, size, quantum, seed (seed innermost
// so grids group a seed sweep on one row).
func (sc *Scenario) Expand() []*Cell {
	var cells []*Cell
	for _, sched := range sc.Schedulers {
		for _, fault := range sc.Faults {
			for _, th := range sc.Threads {
				for _, size := range sc.Sizes {
					for _, q := range sc.Quanta {
						for _, seed := range sc.Seeds {
							cells = append(cells, &Cell{
								Scenario: sc, Index: len(cells),
								Scheduler: sched, Fault: fault,
								Threads: th, Size: size, Quantum: q, Seed: seed,
							})
						}
					}
				}
			}
		}
	}
	return cells
}

// Cells expands every scenario, in file order.
func (s *Spec) Cells() []*Cell {
	var out []*Cell
	for _, sc := range s.Scenarios {
		out = append(out, sc.Expand()...)
	}
	return out
}

// Digest is a stable content digest of the expanded spec, recorded in
// the grid artifact as provenance.
func (s *Spec) Digest() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "suite=%s\n", s.Suite)
	for _, sc := range s.Scenarios {
		fmt.Fprintf(h, "scenario=%s workload=%s region=%+v limits=%+v timeout=%s profile=%d ring=%d/%d/%d expect=%+v\n",
			sc.Name, sc.Workload, sc.Region, sc.Limits, sc.Timeout, sc.ProfileRuns, sc.RingBytes, sc.Sample, sc.Window, sc.Expect)
		for _, c := range sc.Expand() {
			fmt.Fprintf(h, "cell=%d %s seed=%d\n", c.Index, c.Axes(), c.Seed)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// --- scalar decoding helpers ---

func scalarOf(v any, what string) (string, error) {
	if v == nil {
		return "", nil
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("%s must be a scalar", what)
	}
	return s, nil
}

func int64Of(v any, what string) (int64, error) {
	s, ok := v.(string)
	if !ok {
		return 0, fmt.Errorf("%s must be an integer", what)
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%s: bad integer %q", what, s)
	}
	return n, nil
}

// int64ListOf accepts a single integer or a flow/block list of them.
func int64ListOf(v any, what string) ([]int64, error) {
	switch t := v.(type) {
	case string:
		n, err := int64Of(t, what)
		if err != nil {
			return nil, err
		}
		return []int64{n}, nil
	case []any:
		if len(t) == 0 {
			return nil, fmt.Errorf("%s must not be empty", what)
		}
		out := make([]int64, 0, len(t))
		for _, e := range t {
			n, err := int64Of(e, what)
			if err != nil {
				return nil, err
			}
			out = append(out, n)
		}
		return out, nil
	}
	return nil, fmt.Errorf("%s must be an integer or a list", what)
}

func stringListOf(v any, what string) ([]string, error) {
	switch t := v.(type) {
	case string:
		return []string{t}, nil
	case []any:
		if len(t) == 0 {
			return nil, fmt.Errorf("%s must not be empty", what)
		}
		out := make([]string, 0, len(t))
		for _, e := range t {
			s, ok := e.(string)
			if !ok {
				return nil, fmt.Errorf("%s entries must be scalars", what)
			}
			out = append(out, s)
		}
		return out, nil
	}
	return nil, fmt.Errorf("%s must be a scalar or a list", what)
}

// seedsOf accepts a list of seeds or an inclusive "lo..hi" range (the
// notation that makes "hunt hundreds of seeds" a one-line edit).
func seedsOf(v any) ([]int64, error) {
	if s, ok := v.(string); ok {
		if lo, hi, found := strings.Cut(s, ".."); found {
			l, err1 := strconv.ParseInt(strings.TrimSpace(lo), 10, 64)
			h, err2 := strconv.ParseInt(strings.TrimSpace(hi), 10, 64)
			if err1 != nil || err2 != nil || h < l {
				return nil, fmt.Errorf("bad seed range %q (want lo..hi)", s)
			}
			if h-l+1 > 100_000 {
				return nil, fmt.Errorf("seed range %q expands to %d cells; cap is 100000", s, h-l+1)
			}
			out := make([]int64, 0, h-l+1)
			for i := l; i <= h; i++ {
				out = append(out, i)
			}
			return out, nil
		}
	}
	out, err := int64ListOf(v, "seeds")
	if err != nil {
		return nil, err
	}
	seen := make(map[int64]bool, len(out))
	for _, s := range out {
		if seen[s] {
			return nil, fmt.Errorf("duplicate seed %d", s)
		}
		seen[s] = true
	}
	return out, nil
}
