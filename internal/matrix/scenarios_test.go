package matrix

import (
	"bytes"
	"path/filepath"
	"testing"
)

// TestCommittedScenariosParse loads every committed scenario file: the
// corpus must always parse and expand, so a format change can never
// strand scenarios/.
func TestCommittedScenariosParse(t *testing.T) {
	files, err := filepath.Glob("../../scenarios/*.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("found %d scenario files, want at least table1, smoke, faults", len(files))
	}
	for _, f := range files {
		spec, err := LoadSpec(f)
		if err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		if cells := spec.Cells(); len(cells) == 0 {
			t.Errorf("%s: expands to zero cells", f)
		}
	}
}

// TestTable1ScenarioPasses executes the committed Table 1 suite — the
// acceptance criterion: all three paper bugs reproduce via Maple seed
// exploration, replay divergence-free, and slice closed.
func TestTable1ScenarioPasses(t *testing.T) {
	spec, err := LoadSpec("../../scenarios/table1.yaml")
	if err != nil {
		t.Fatal(err)
	}
	grid, err := Run(spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !grid.Pass {
		var buf bytes.Buffer
		grid.RenderText(&buf)
		t.Fatalf("table1 suite failed:\n%s", buf.String())
	}
	if grid.Counts.Cells != 24 || grid.Counts.Pass != 24 {
		t.Fatalf("counts = %+v, want 24/24 passing", grid.Counts)
	}
	for _, s := range grid.Scenarios {
		if s.Exposed != s.Cells {
			t.Errorf("%s: %d/%d cells exposed the bug", s.Name, s.Exposed, s.Cells)
		}
	}
}
