package matrix

import (
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"
)

const sampleSpec = `
suite: sample
defaults:
  quantum: [20, 40]
  timeout: 5s
scenarios:
  - name: bug-hunt
    workload: pbzip2
    threads: [3]
    sizes: [40]
    seeds: 1..4
    schedulers: maple
    expect:
      found: all
      slice: closed
      min_members: 3
  - name: smoke
    workload: blackscholes
    seeds: [7, 9]
    expect:
      outcome: exit
      output: identical
`

func TestParseSpecDecodesScenarios(t *testing.T) {
	spec, err := ParseSpec(sampleSpec)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if spec.Suite != "sample" || len(spec.Scenarios) != 2 {
		t.Fatalf("suite=%q scenarios=%d", spec.Suite, len(spec.Scenarios))
	}
	bug := spec.Scenarios[0]
	if bug.Name != "bug-hunt" || bug.Workload != "pbzip2" {
		t.Fatalf("scenario 0 = %+v", bug)
	}
	if !reflect.DeepEqual(bug.Seeds, []int64{1, 2, 3, 4}) {
		t.Errorf("seed range: %v", bug.Seeds)
	}
	// defaults merge in for unset keys...
	if !reflect.DeepEqual(bug.Quanta, []int64{20, 40}) {
		t.Errorf("quantum default: %v", bug.Quanta)
	}
	if bug.Timeout != 5*time.Second {
		t.Errorf("timeout default: %v", bug.Timeout)
	}
	if !reflect.DeepEqual(bug.Schedulers, []string{SchedulerMaple}) {
		t.Errorf("schedulers: %v", bug.Schedulers)
	}
	if bug.Expect.Found != "all" || bug.Expect.Slice != "closed" || bug.Expect.MinMembers != 3 {
		t.Errorf("expect: %+v", bug.Expect)
	}
	// ...and built-in defaults fill the rest.
	if bug.Expect.Replay != "clean" || bug.Expect.ExitCode != -1 || bug.Expect.Fault != "none" {
		t.Errorf("built-in expect defaults: %+v", bug.Expect)
	}
	smoke := spec.Scenarios[1]
	if smoke.Expect.Outcome != "exit" || smoke.Expect.Output != "identical" {
		t.Errorf("smoke expect: %+v", smoke.Expect)
	}
	if !reflect.DeepEqual(smoke.Threads, []int64{0}) { // 0 = workload default
		t.Errorf("smoke threads: %v", smoke.Threads)
	}
}

func TestParseSpecFaultDefaultsToDetected(t *testing.T) {
	spec, err := ParseSpec(`
scenarios:
  - name: f
    workload: pbzip2
    faults: [none, file:flip-magic]
`)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if got := spec.Scenarios[0].Expect.Fault; got != "detected" {
		t.Fatalf("expect.fault = %q, want detected (auto-default with a fault axis)", got)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"no-scenarios", "suite: x\n", "non-empty 'scenarios'"},
		{"unknown-top", "bogus: 1\nscenarios:\n  - name: a\n    workload: pbzip2\n", `unknown top-level key "bogus"`},
		{"unknown-scenario-key", "scenarios:\n  - name: a\n    workload: pbzip2\n    wat: 1\n", `unknown key "wat"`},
		{"no-name", "scenarios:\n  - workload: pbzip2\n", "needs a name"},
		{"no-workload", "scenarios:\n  - name: a\n", "needs a workload"},
		{"dup-name", "scenarios:\n  - name: a\n    workload: pbzip2\n  - name: a\n    workload: aget\n", "duplicate scenario name"},
		{"bad-scheduler", "scenarios:\n  - name: a\n    workload: pbzip2\n    schedulers: pct\n", "unknown scheduler"},
		{"bad-fault", "scenarios:\n  - name: a\n    workload: pbzip2\n    faults: file:nope\n", "unknown fault"},
		{"bad-fault-shape", "scenarios:\n  - name: a\n    workload: pbzip2\n    faults: flip-magic\n", "bad fault"},
		{"bad-seed-range", "scenarios:\n  - name: a\n    workload: pbzip2\n    seeds: 9..3\n", "bad seed range"},
		{"huge-seed-range", "scenarios:\n  - name: a\n    workload: pbzip2\n    seeds: 1..2000000\n", "cap is 100000"},
		{"dup-seed", "scenarios:\n  - name: a\n    workload: pbzip2\n    seeds: [3, 3]\n", "duplicate seed"},
		{"bad-expect", "scenarios:\n  - name: a\n    workload: pbzip2\n    expect:\n      found: maybe\n", "expect.found"},
		{"bad-timeout", "scenarios:\n  - name: a\n    workload: pbzip2\n    timeout: fast\n", "bad timeout"},
		{"defaults-name", "defaults:\n  name: a\nscenarios:\n  - name: a\n    workload: pbzip2\n", "not allowed in defaults"},
		{"empty-list", "scenarios:\n  - name: a\n    workload: pbzip2\n    threads: []\n", "must not be empty"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec(tc.src)
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestExpandOrderIsDeterministic(t *testing.T) {
	spec, err := ParseSpec(`
scenarios:
  - name: x
    workload: pbzip2
    threads: [2, 3]
    seeds: [10, 11]
    schedulers: [random, maple]
`)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	cells := spec.Cells()
	if len(cells) != 8 {
		t.Fatalf("got %d cells, want 8", len(cells))
	}
	// Scheduler is the outermost axis, seed the innermost.
	var got []string
	for _, c := range cells {
		got = append(got, c.Axes()+" "+strconv.FormatInt(c.Seed, 10))
	}
	want := []string{
		"t2 s0 q20 random 10", "t2 s0 q20 random 11",
		"t3 s0 q20 random 10", "t3 s0 q20 random 11",
		"t2 s0 q20 maple 10", "t2 s0 q20 maple 11",
		"t3 s0 q20 maple 10", "t3 s0 q20 maple 11",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("expansion order:\n got  %v\n want %v", got, want)
	}
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has Index %d", i, c.Index)
		}
	}
}

func TestSpecDigestStable(t *testing.T) {
	a, err := ParseSpec(sampleSpec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSpec(sampleSpec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("same source, different digests: %s vs %s", a.Digest(), b.Digest())
	}
	c, err := ParseSpec(strings.Replace(sampleSpec, "seeds: 1..4", "seeds: 1..5", 1))
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() == c.Digest() {
		t.Fatal("different specs share a digest")
	}
}

func TestFaultNamesCoverRegistries(t *testing.T) {
	names := FaultNames()
	if len(names) == 0 {
		t.Fatal("no fault names")
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate fault name %s", n)
		}
		seen[n] = true
		if !strings.HasPrefix(n, "file:") && !strings.HasPrefix(n, "pinball:") {
			t.Fatalf("fault name %q has no registry prefix", n)
		}
		if err := checkFaultName(n); err != nil {
			t.Fatalf("registry name %q rejected: %v", n, err)
		}
	}
}
