package matrix

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/isa"
	"repro/internal/maple"
	"repro/internal/pinball"
	"repro/internal/pinplay"
	"repro/internal/supervisor"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// Cell exit codes, mirroring the CLI's shared table (cmd/internal/cli)
// so a grid reads like a batch of tool invocations.
const (
	CellOK         = 0 // run + checks behaved; provenance is trustworthy
	CellError      = 1 // the cell errored outside the typed classes
	CellBadPinball = 2 // the pinball failed to decode or validate
	CellDiverged   = 3 // replay diverged or hit an execution limit
	CellPanic      = 5 // a phase panicked (isolated by the supervisor)
	CellHung       = 6 // the watchdog killed a hung cell
	CellEstimated  = 9 // the cell's slice carries estimated ring content
)

// FaultNames lists the fault axis values the scenario format accepts,
// in deterministic order: every byte-level corruptor as file:<name>,
// every semantic corruptor as pinball:<name>.
func FaultNames() []string {
	var out []string
	for _, c := range faultinject.FileCorruptors() {
		out = append(out, "file:"+c.Name)
	}
	for _, c := range faultinject.PinballCorruptors() {
		if !c.SliceOnly {
			out = append(out, "pinball:"+c.Name)
		}
	}
	for _, c := range faultinject.RingCorruptors() {
		out = append(out, "pinball:"+c.Name)
	}
	return out
}

// RunOptions configures a matrix run.
type RunOptions struct {
	// Workers bounds the parallel cell pool (default: NumCPU, capped
	// at 8). Cell results are ordered by expansion index, so the worker
	// count never changes the artifact.
	Workers int
	// Timings includes per-cell wall-clock durations in the artifact.
	// Off by default: identical invocations must produce byte-identical
	// grids, and wall-clock is the one non-deterministic fact.
	Timings bool
	// BaseDir resolves file-based workloads (scenario workload values
	// ending in .c) relative to the spec file's directory.
	BaseDir string
	// Log, when set, receives one progress line per completed cell.
	Log func(format string, args ...any)
}

// Run expands the spec and executes every cell on a bounded worker
// pool, each under the supervisor's panic isolation and the scenario's
// watchdog timeout, and assembles the deterministic grid.
func Run(spec *Spec, opts RunOptions) (*Grid, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
		if workers > 8 {
			workers = 8
		}
	}
	r := &runner{opts: opts, progs: map[string]*progEntry{}}
	cells := spec.Cells()
	results := make([]*CellResult, len(cells))

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				res := r.runCell(cells[i])
				results[i] = res
				if opts.Log != nil {
					opts.Log("%-12s %s seed=%-4d %s", res.Scenario, cells[i].Axes(), res.Seed, res.Status)
				}
			}
		}()
	}
	for i := range cells {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	return assemble(spec, cells, results, opts.Timings), nil
}

// progEntry caches one compiled program per workload reference.
type progEntry struct {
	once sync.Once
	w    *workloads.Workload // nil for file-based programs
	prog *isa.Program
	err  error
}

type runner struct {
	opts  RunOptions
	mu    sync.Mutex
	progs map[string]*progEntry
}

// resolve compiles (once) the cell's workload: a registry name, or a
// mini-C source path relative to the spec.
func (r *runner) resolve(name string) (*isa.Program, *workloads.Workload, error) {
	r.mu.Lock()
	e, ok := r.progs[name]
	if !ok {
		e = &progEntry{}
		r.progs[name] = e
	}
	r.mu.Unlock()
	e.once.Do(func() {
		if w, err := workloads.ByName(name); err == nil {
			e.w = w
			e.prog, e.err = w.Program()
			return
		}
		if filepath.Ext(name) != ".c" {
			e.err = fmt.Errorf("matrix: workload %q is neither registered nor a .c file", name)
			return
		}
		path := name
		if r.opts.BaseDir != "" && !filepath.IsAbs(path) {
			path = filepath.Join(r.opts.BaseDir, path)
		}
		src, err := readFile(path)
		if err != nil {
			e.err = err
			return
		}
		e.prog, e.err = cc.CompileSource(filepath.Base(path), src)
	})
	return e.prog, e.w, e.err
}

// runCell executes one cell under the supervisor: record (random or
// maple), optional fault injection, replay verification, failure
// slicing, then assertion evaluation.
func (r *runner) runCell(c *Cell) *CellResult {
	sc := c.Scenario
	res := &CellResult{
		Scenario: sc.Name, Workload: sc.Workload,
		Scheduler: c.Scheduler, Threads: c.Threads, Size: c.Size,
		Quantum: c.Quantum, Seed: c.Seed,
	}
	if c.Fault != FaultNone {
		res.Fault = c.Fault
	}
	start := time.Now()
	// The watchdog backstops the context deadline: the deadline stops
	// the cell from inside the VM's stepping loop with a typed error,
	// the watchdog only fires if a phase wedges outside any VM loop.
	rep, err := supervisor.Run("cell", supervisor.Options{
		MaxAttempts: 1,
		Watchdog:    sc.Timeout + 5*time.Second,
	}, func() error {
		ctx, cancel := context.WithTimeout(context.Background(), sc.Timeout)
		defer cancel()
		return r.executeCell(ctx, c, res)
	})
	res.DurationMS = time.Since(start).Milliseconds()
	if err != nil {
		var se *supervisor.SessionError
		if errors.As(err, &se) {
			switch se.Kind {
			case supervisor.KindPanic:
				res.ExitCode = CellPanic
			case supervisor.KindTimeout:
				res.ExitCode = CellHung
			default:
				if res.ExitCode == CellOK {
					res.ExitCode = classifyExit(se.Err)
				}
			}
		} else if res.ExitCode == CellOK {
			res.ExitCode = classifyExit(err)
		}
		res.Outcome = "error"
		res.Status = statusFail
		res.Reason = err.Error()
		return res
	}
	_ = rep
	evaluateCell(c, res)
	return res
}

// executeCell fills the cell's facts; assertion evaluation happens
// outside, so a cell that *observes* a failure (the whole point of bug
// scenarios) is not itself a failure.
func (r *runner) executeCell(ctx context.Context, c *Cell, res *CellResult) error {
	sc := c.Scenario
	prog, w, err := r.resolve(sc.Workload)
	if err != nil {
		return err
	}
	threads := c.Threads
	if threads <= 0 && w != nil {
		threads = w.DefaultThreads
	}
	var input []int64
	if w != nil {
		input = w.Input(threads, c.Size)
	} else if threads > 0 || c.Size > 0 {
		input = []int64{threads, c.Size}
	}
	cfg := pinplay.LogConfig{
		Seed: c.Seed, MeanQuantum: c.Quantum, Input: input,
		RandSeed: c.Seed, MaxSteps: sc.Limits.Steps,
		RingBytes: sc.RingBytes, RingSample: sc.Sample, JournalEvery: sc.Window,
	}

	// Record.
	var pb *pinball.Pinball
	switch c.Scheduler {
	case SchedulerMaple:
		mres, err := maple.FindBug(ctx, prog, cfg, maple.Options{
			ProfileRuns: sc.ProfileRuns, MaxSteps: sc.Limits.Steps,
		})
		if err != nil {
			return err
		}
		res.MapleAttempts = mres.Attempts
		res.MaplePredicted = mres.RootsPredicted
		if mres.Exposed {
			pb = mres.Pinball
		}
	default:
		pb, err = pinplay.Log(prog, cfg, pinplay.RegionSpec{SkipMain: sc.Region.Skip, LengthMain: sc.Region.Length})
		if err != nil {
			return err
		}
	}
	if pb == nil {
		// Maple explored clean: every run exited, nothing was captured.
		res.Outcome = "exit"
		return nil
	}
	res.Pinball = pb.ID()
	if pb.Gapped() {
		res.RingEvicted = len(pb.Evictions)
		res.RingGap = pb.GapInstrs()
	}
	if pb.Failure != nil {
		res.Outcome = "failure"
		res.Exposed = true
		res.Failure = pb.Failure.Error()
	} else {
		res.Outcome = "exit"
	}

	// Fault injection: corrupt the capture and record whether the
	// defence layers (typed decode errors, Validate, divergence
	// checkpoints) catch it. Fault cells end here — the corrupted
	// pinball is not replayed for output or sliced.
	if c.Fault != FaultNone {
		return r.injectFault(ctx, c, prog, pb, res)
	}

	// Replay verification.
	if sc.Expect.Replay == "clean" {
		m, _, err := pinplay.ReplayWith(prog, pb, pinplay.ReplayOptions{
			Limits: vm.Limits{MaxPages: sc.Limits.Pages, Ctx: ctx},
		})
		switch {
		case err == nil:
			res.Replay = "clean"
			res.Output = m.Output()
		case errors.Is(err, pinplay.ErrReplay):
			res.Replay = "diverged"
			res.ExitCode = CellDiverged
			res.Reason = err.Error()
		default:
			return err
		}
	}

	// Failure slice + closure check (the closure checker also verifies
	// provenance annotations against a recomputation from the trace's
	// gap spans).
	wantSlice := sc.Expect.Slice == "closed" || sc.Expect.Slice == "provenance"
	if wantSlice && pb.Failure != nil && res.Replay != "diverged" {
		sess := core.Open(prog, pb)
		sl, err := sess.SliceAtFailure()
		if err != nil {
			return fmt.Errorf("slice: %w", err)
		}
		res.SliceMembers = sl.Stats.Members
		res.SliceTrace = sl.Stats.TraceLen
		if sl.Prov != nil {
			res.ProvExactEdges = sl.Prov.ExactEdges
			res.ProvBridgedEdges = sl.Prov.BridgedEdges
			res.ProvEstimatedEdges = sl.Prov.EstimatedEdges
			if sl.Prov.Degraded() {
				res.ExitCode = CellEstimated
			}
		}
		slicer, err := sess.Slicer()
		if err != nil {
			return err
		}
		if err := slicer.CheckClosure(sl); err != nil {
			res.SliceClosed = false
			res.Reason = err.Error()
		} else {
			res.SliceClosed = true
		}
	}
	return nil
}

// injectFault applies the cell's named corruptor and drives the
// detection pipeline: decode (file faults), validate, then replay.
func (r *runner) injectFault(ctx context.Context, c *Cell, prog *isa.Program, pb *pinball.Pinball, res *CellResult) error {
	kind, name, _ := strings.Cut(c.Fault, ":")
	detected := func(how string, code int) {
		res.FaultDetected = "detected:" + how
		res.ExitCode = code
	}
	switch kind {
	case "file":
		corr, ok := findFileCorruptor(name)
		if !ok {
			return fmt.Errorf("unknown file corruptor %q", name)
		}
		data, err := pb.EncodeBytes()
		if err != nil {
			return err
		}
		bad, ok := corr.Apply(data)
		if !ok {
			res.FaultDetected = "inapplicable"
			return nil
		}
		pb2, err := pinball.Decode(bad)
		if err != nil {
			if corr.Want != nil && !errors.Is(err, corr.Want) {
				return fmt.Errorf("fault %s: decode failed with %v, want %v", c.Fault, err, corr.Want)
			}
			detected("decode", CellBadPinball)
			return nil
		}
		pb = pb2
	case "pinball":
		corr, ok := findPinballCorruptor(name)
		if !ok {
			return fmt.Errorf("unknown pinball corruptor %q", name)
		}
		clone, err := faultinject.Clone(pb)
		if err != nil {
			return err
		}
		if !corr.Apply(clone) {
			res.FaultDetected = "inapplicable"
			return nil
		}
		pb = clone
	}
	if err := pb.Validate(); err != nil {
		detected("validate", CellBadPinball)
		return nil
	}
	m, _, err := pinplay.ReplayWith(prog, pb, pinplay.ReplayOptions{
		Limits: vm.Limits{MaxPages: c.Scenario.Limits.Pages, Ctx: ctx},
	})
	switch {
	case err != nil:
		detected("replay", CellDiverged)
	case pb.Failure == nil && m.Stopped() == vm.StopFailure:
		// The tampered run faulted where the recording did not.
		detected("fault", CellDiverged)
	default:
		res.FaultDetected = "missed"
	}
	return nil
}

func findFileCorruptor(name string) (faultinject.FileCorruptor, bool) {
	for _, c := range faultinject.FileCorruptors() {
		if c.Name == name {
			return c, true
		}
	}
	return faultinject.FileCorruptor{}, false
}

func findPinballCorruptor(name string) (faultinject.PinballCorruptor, bool) {
	for _, c := range faultinject.PinballCorruptors() {
		if c.Name == name {
			return c, true
		}
	}
	for _, c := range faultinject.RingCorruptors() {
		if c.Name == name {
			return c, true
		}
	}
	return faultinject.PinballCorruptor{}, false
}

// classifyExit maps an error to the cell exit code table.
func classifyExit(err error) int {
	switch {
	case err == nil:
		return CellOK
	case errors.Is(err, pinball.ErrNotPinball),
		errors.Is(err, pinball.ErrVersionSkew),
		errors.Is(err, pinball.ErrTruncated),
		errors.Is(err, pinball.ErrCorrupt):
		return CellBadPinball
	case errors.Is(err, pinplay.ErrReplay),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return CellDiverged
	}
	return CellError
}

// evaluateCell applies the scenario's per-cell assertions to the facts.
func evaluateCell(c *Cell, res *CellResult) {
	e := c.Scenario.Expect
	fail := func(format string, args ...any) {
		res.Status = statusFail
		if res.Reason == "" {
			res.Reason = fmt.Sprintf(format, args...)
		}
	}
	res.Status = statusPass
	if res.FaultDetected == "inapplicable" {
		// The corruptor declined this pinball (e.g. no syscalls to
		// tamper with): the cell is provenance, not a verdict.
		res.Status = statusSkip
		return
	}
	switch e.Outcome {
	case "exit":
		if res.Outcome != "exit" {
			fail("outcome %s, want exit", res.Outcome)
		}
	case "failure":
		if res.Outcome != "failure" {
			fail("outcome %s, want failure", res.Outcome)
		}
	default:
		if res.Outcome == "error" {
			fail("cell errored")
		}
	}
	if e.Replay == "clean" && res.Replay == "diverged" {
		fail("replay diverged")
	}
	if (e.Slice == "closed" || e.Slice == "provenance") && res.Outcome == "failure" && res.Fault == "" {
		min := e.MinMembers
		if min < 1 {
			min = 1
		}
		provEdges := res.ProvExactEdges + res.ProvBridgedEdges + res.ProvEstimatedEdges
		switch {
		case !res.SliceClosed:
			fail("slice closure violated: %s", res.Reason)
		case res.SliceMembers < min:
			fail("slice has %d members, want >= %d", res.SliceMembers, min)
		case res.SliceMembers >= res.SliceTrace:
			fail("slice (%d) not smaller than region (%d)", res.SliceMembers, res.SliceTrace)
		case e.Slice == "provenance" && res.RingEvicted > 0 && provEdges == 0:
			fail("flight-recorder slice carries no provenance annotation")
		case e.Slice == "provenance" && res.RingEvicted == 0 && provEdges > 0:
			fail("gap-free slice carries provenance annotation")
		}
	}
	if e.Fault == "detected" && res.Fault != "" && res.FaultDetected == "missed" {
		fail("injected fault %s went undetected", res.Fault)
	}
	if e.ExitCode >= 0 && res.ExitCode != e.ExitCode {
		fail("exit code %d, want %d", res.ExitCode, e.ExitCode)
	}
}

// readFile wraps os.ReadFile with a matrix-scoped error.
func readFile(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("matrix: %w", err)
	}
	return string(data), nil
}
