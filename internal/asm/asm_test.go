package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/vm"
)

func TestAssembleAndRun(t *testing.T) {
	src := `
; compute 6*7 and print it
.global answer 1
.func main
	movi r1, 6
	movi r2, 7
	mul r3, r1, r2
	store [rz+$answer], r3
	load r4, [rz+$answer]
	syscall r0, 2, r4        ; write
	halt
.endfunc
`
	prog, err := Assemble("t.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := vm.New(prog, vm.Config{MaxSteps: 1000})
	m.Run()
	if out := m.Output(); len(out) != 1 || out[0] != 42 {
		t.Fatalf("output = %v, want [42]", out)
	}
}

func TestAssembleBranchesAndLabels(t *testing.T) {
	src := `
.func main
	movi r1, 5
	movi r2, 0
loop:
	add r2, r2, r1
	addi r1, r1, -1
	br r1, loop
	syscall r0, 2, r2
	halt
.endfunc
`
	prog, err := Assemble("t.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := vm.New(prog, vm.Config{MaxSteps: 1000})
	m.Run()
	if out := m.Output(); len(out) != 1 || out[0] != 15 {
		t.Fatalf("output = %v, want [15]", out)
	}
}

func TestAssembleJumpTable(t *testing.T) {
	src := `
.table tab case0 case1
.func main
	movi r1, 1
	movi r2, $tab
	add r2, r2, r1
	load r2, [r2+0]
	jmpi r2
case0:
	movi r3, 100
	jmp done
case1:
	movi r3, 200
done:
	syscall r0, 2, r3
	halt
.endfunc
`
	prog, err := Assemble("t.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if len(prog.JumpTables) != 1 || len(prog.JumpTables[0].Targets) != 2 {
		t.Fatalf("jump tables = %+v", prog.JumpTables)
	}
	m := vm.New(prog, vm.Config{MaxSteps: 1000})
	m.Run()
	if out := m.Output(); len(out) != 1 || out[0] != 200 {
		t.Fatalf("output = %v, want [200]", out)
	}
}

func TestAssembleCallsAndFuncAddr(t *testing.T) {
	src := `
.func double
	add r0, r1, r1
	ret
.endfunc
.func main
	movi r1, 21
	call double
	syscall r0, 2, r0
	movi r6, @double
	movi r1, 10
	calli r6
	syscall r0, 2, r0
	halt
.endfunc
`
	prog, err := Assemble("t.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := vm.New(prog, vm.Config{MaxSteps: 1000})
	m.Run()
	out := m.Output()
	if len(out) != 2 || out[0] != 42 || out[1] != 20 {
		t.Fatalf("output = %v, want [42 20]", out)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"no main", ".func f\n nop\n.endfunc\n", "no main"},
		{"unbound label", ".func main\n jmp nowhere\n halt\n.endfunc\n", "unbound label"},
		{"bad reg", ".func main\n mov r99, r1\n.endfunc\n", "bad register"},
		{"unknown op", ".func main\n frob r1\n.endfunc\n", "unknown instruction"},
		{"unknown sym", ".func main\n movi r1, $nope\n halt\n.endfunc\n", "unknown symbol"},
		{"undefined call", ".func main\n call nope\n halt\n.endfunc\n", "undefined function"},
		{"dup global", ".global a 1\n.global a 1\n.func main\n halt\n.endfunc\n", "duplicate global"},
		{"operand count", ".func main\n add r1, r2\n.endfunc\n", "wants 3 operands"},
		{"open func", ".func main\n halt\n", "left open"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble("e.s", tc.src)
			if err == nil {
				t.Fatalf("expected error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestGlobalInitialisers(t *testing.T) {
	prog, err := Assemble("t.s", `
.global vec 3 10 20 30
.func main
	load r1, [rz+$vec]
	syscall r0, 2, r1
	halt
.endfunc
`)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if prog.GlobalWords != 3 {
		t.Errorf("GlobalWords = %d, want 3", prog.GlobalWords)
	}
	m := vm.New(prog, vm.Config{MaxSteps: 100})
	m.Run()
	if out := m.Output(); len(out) != 1 || out[0] != 10 {
		t.Fatalf("output = %v, want [10]", out)
	}
}

func TestBuilderLineInfo(t *testing.T) {
	b := NewBuilder("p")
	f := b.File("x.c")
	b.BeginFunc("main")
	b.SetPos(f, 42)
	b.MovImm(isa.R1, 1)
	b.Emit(isa.Instr{Op: isa.HALT})
	b.EndFunc()
	prog, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.SourceOf(0); got != "x.c:42" {
		t.Errorf("SourceOf = %q, want x.c:42", got)
	}
}

func TestBuilderDetectsEmptyFunc(t *testing.T) {
	b := NewBuilder("p")
	b.BeginFunc("main")
	b.EndFunc()
	if _, err := b.Finish(); err == nil {
		t.Error("empty function accepted")
	}
}

func TestAssemblerLineNumbersMatchSource(t *testing.T) {
	src := ".func main\n\tnop\n\thalt\n.endfunc\n"
	prog, err := Assemble("t.s", src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Code[0].Line != 2 || prog.Code[1].Line != 3 {
		t.Errorf("lines = %d,%d, want 2,3", prog.Code[0].Line, prog.Code[1].Line)
	}
}

func TestAssembleCondVars(t *testing.T) {
	// Producer signals; consumer waits. In assembly the wait/lock pair is
	// explicit (the compiler emits both from one wait() builtin).
	src := `
.global mtx 1
.global cv 1
.global ready 1
.global out 1
.func waiter
	movi r2, $mtx
	movi r3, $cv
	lock r2
loop:
	load r4, [rz+$ready]
	br r4, done
	wait r3, r2
	lock r2
	jmp loop
done:
	movi r5, 77
	store [rz+$out], r5
	unlock r2
	ret
.endfunc
.func main
	movi r1, 0
	spawn r6, waiter, r1
	movi r2, $mtx
	movi r3, $cv
	lock r2
	movi r4, 1
	store [rz+$ready], r4
	signal r3
	unlock r2
	join r6
	load r4, [rz+$out]
	syscall r0, 2, r4
	halt
.endfunc
`
	prog, err := Assemble("cv.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	for seed := int64(1); seed <= 10; seed++ {
		m := vm.New(prog, vm.Config{Sched: vm.NewRandomScheduler(seed, 5), MaxSteps: 100000})
		if got := m.Run(); got != vm.StopHalt {
			t.Fatalf("seed %d: stop = %v (%v)", seed, got, m.Failure())
		}
		if out := m.Output(); len(out) != 1 || out[0] != 77 {
			t.Fatalf("seed %d: output = %v", seed, out)
		}
	}
}
