// Package asm turns symbolic assembly — either a programmatic Builder used
// by the mini-C compiler or a textual two-pass assembler used in tests and
// examples — into executable isa.Programs.
package asm

import (
	"fmt"

	"repro/internal/isa"
)

// LabelID identifies a code label created by Builder.NewLabel.
type LabelID int

// Builder assembles a program incrementally: emit instructions, bind
// labels, declare globals and jump tables, then call Finish to resolve
// references and produce an immutable isa.Program.
type Builder struct {
	name    string
	code    []isa.Instr
	funcs   []isa.Func
	curFunc int // index into funcs, -1 when outside a function

	labels  []int64 // label -> pc, -1 while unbound
	patches []patch

	files   []string
	curFile int32
	curLine int32

	globals  int64
	data     []isa.DataInit
	symbols  []isa.Symbol
	tables   []pendingTable
	entrySet bool
	entryPC  int64

	calls []callPatch
	errs  []error
}

type patch struct {
	pc    int64
	label LabelID
}

type callPatch struct {
	pc   int64
	name string
}

type pendingTable struct {
	base   int64
	labels []LabelID
}

// NewBuilder returns an empty builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, curFunc: -1}
}

// File interns a source file name and returns its index for SetPos.
func (b *Builder) File(name string) int32 {
	for i, f := range b.files {
		if f == name {
			return int32(i)
		}
	}
	b.files = append(b.files, name)
	return int32(len(b.files) - 1)
}

// SetPos sets the source position attached to subsequently emitted
// instructions.
func (b *Builder) SetPos(file int32, line int32) {
	b.curFile = file
	b.curLine = line
}

// PC returns the address the next instruction will be emitted at.
func (b *Builder) PC() int64 { return int64(len(b.code)) }

// BeginFunc starts a new function at the current pc. Functions must not
// nest.
func (b *Builder) BeginFunc(name string) {
	if b.curFunc >= 0 {
		b.errs = append(b.errs, fmt.Errorf("asm: BeginFunc %q inside open function %q", name, b.funcs[b.curFunc].Name))
		return
	}
	b.funcs = append(b.funcs, isa.Func{Name: name, Entry: b.PC()})
	b.curFunc = len(b.funcs) - 1
	if name == "main" && !b.entrySet {
		b.entryPC = b.PC()
		b.entrySet = true
	}
}

// EndFunc closes the currently open function.
func (b *Builder) EndFunc() {
	if b.curFunc < 0 {
		b.errs = append(b.errs, fmt.Errorf("asm: EndFunc with no open function"))
		return
	}
	b.funcs[b.curFunc].End = b.PC()
	if b.funcs[b.curFunc].End == b.funcs[b.curFunc].Entry {
		b.errs = append(b.errs, fmt.Errorf("asm: function %q is empty", b.funcs[b.curFunc].Name))
	}
	b.curFunc = -1
}

// NewLabel creates a fresh, unbound label.
func (b *Builder) NewLabel() LabelID {
	b.labels = append(b.labels, -1)
	return LabelID(len(b.labels) - 1)
}

// Bind binds the label to the current pc. A label may be bound once.
func (b *Builder) Bind(l LabelID) {
	if b.labels[l] != -1 {
		b.errs = append(b.errs, fmt.Errorf("asm: label %d bound twice", l))
		return
	}
	b.labels[l] = b.PC()
}

// Emit appends a raw instruction and returns its pc.
func (b *Builder) Emit(in isa.Instr) int64 {
	in.File = b.curFile
	in.Line = b.curLine
	b.code = append(b.code, in)
	return int64(len(b.code) - 1)
}

// Op emits a three-register ALU or comparison instruction.
func (b *Builder) Op(op isa.Op, rd, rs1, rs2 isa.Reg) int64 {
	return b.Emit(isa.Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// MovImm emits rd <- imm.
func (b *Builder) MovImm(rd isa.Reg, imm int64) int64 {
	return b.Emit(isa.Instr{Op: isa.MOVI, Rd: rd, Imm: imm})
}

// Mov emits rd <- rs.
func (b *Builder) Mov(rd, rs isa.Reg) int64 {
	return b.Emit(isa.Instr{Op: isa.MOV, Rd: rd, Rs1: rs})
}

// Load emits rd <- mem[base+off].
func (b *Builder) Load(rd, base isa.Reg, off int64) int64 {
	return b.Emit(isa.Instr{Op: isa.LOAD, Rd: rd, Rs1: base, Imm: off})
}

// Store emits mem[base+off] <- rs.
func (b *Builder) Store(base isa.Reg, off int64, rs isa.Reg) int64 {
	return b.Emit(isa.Instr{Op: isa.STORE, Rs1: base, Imm: off, Rs2: rs})
}

// Branch emits a conditional branch (BR or BRZ) on rs to label l.
func (b *Builder) Branch(op isa.Op, rs isa.Reg, l LabelID) int64 {
	pc := b.Emit(isa.Instr{Op: op, Rs1: rs})
	b.patches = append(b.patches, patch{pc, l})
	return pc
}

// Jump emits an unconditional jump to label l.
func (b *Builder) Jump(l LabelID) int64 {
	pc := b.Emit(isa.Instr{Op: isa.JMP})
	b.patches = append(b.patches, patch{pc, l})
	return pc
}

// Call emits a direct call to the named function, resolved at Finish.
func (b *Builder) Call(name string) int64 {
	pc := b.Emit(isa.Instr{Op: isa.CALL})
	b.calls = append(b.calls, callPatch{pc, name})
	return pc
}

// Spawn emits rd <- spawn(name, arg), resolved at Finish.
func (b *Builder) Spawn(rd isa.Reg, name string, arg isa.Reg) int64 {
	pc := b.Emit(isa.Instr{Op: isa.SPAWN, Rd: rd, Rs1: arg})
	b.calls = append(b.calls, callPatch{pc, name})
	return pc
}

// FuncAddr emits rd <- entry pc of the named function (for indirect
// calls), resolved at Finish.
func (b *Builder) FuncAddr(rd isa.Reg, name string) int64 {
	pc := b.Emit(isa.Instr{Op: isa.MOVI, Rd: rd})
	b.calls = append(b.calls, callPatch{pc, name})
	return pc
}

// Global allocates size words of global storage under the given symbol
// name and returns the base address.
func (b *Builder) Global(name string, size int64) int64 {
	addr := b.globals
	b.globals += size
	b.symbols = append(b.symbols, isa.Symbol{Name: name, Addr: addr, Size: size})
	return addr
}

// InitWord records an initial value for a global word.
func (b *Builder) InitWord(addr, val int64) {
	b.data = append(b.data, isa.DataInit{Addr: addr, Val: val})
}

// JumpTable allocates a global jump table whose entries are the pcs of the
// given labels (resolved at Finish) and returns its base address.
func (b *Builder) JumpTable(labels []LabelID) int64 {
	base := b.globals
	b.globals += int64(len(labels))
	b.tables = append(b.tables, pendingTable{base, append([]LabelID(nil), labels...)})
	return base
}

// Finish resolves labels, calls and jump tables, validates the program and
// returns it.
func (b *Builder) Finish() (*isa.Program, error) {
	if b.curFunc >= 0 {
		b.errs = append(b.errs, fmt.Errorf("asm: function %q left open", b.funcs[b.curFunc].Name))
	}
	if !b.entrySet {
		b.errs = append(b.errs, fmt.Errorf("asm: no main function"))
	}
	for _, p := range b.patches {
		pc := b.labels[p.label]
		if pc < 0 {
			b.errs = append(b.errs, fmt.Errorf("asm: unbound label %d referenced at pc %d", p.label, p.pc))
			continue
		}
		b.code[p.pc].Imm = pc
	}
	funcEntry := map[string]int64{}
	for _, f := range b.funcs {
		funcEntry[f.Name] = f.Entry
	}
	for _, c := range b.calls {
		entry, ok := funcEntry[c.name]
		if !ok {
			b.errs = append(b.errs, fmt.Errorf("asm: call to undefined function %q at pc %d", c.name, c.pc))
			continue
		}
		b.code[c.pc].Imm = entry
	}
	prog := &isa.Program{
		Name:        b.name,
		Code:        b.code,
		Funcs:       b.funcs,
		EntryPC:     b.entryPC,
		GlobalWords: b.globals,
		Data:        b.data,
		Symbols:     b.symbols,
		Files:       b.files,
	}
	for _, t := range b.tables {
		jt := isa.JumpTable{Base: t.base}
		for i, l := range t.labels {
			pc := b.labels[l]
			if pc < 0 {
				b.errs = append(b.errs, fmt.Errorf("asm: jump table entry %d uses unbound label", i))
				pc = 0
			}
			jt.Targets = append(jt.Targets, pc)
			prog.Data = append(prog.Data, isa.DataInit{Addr: t.base + int64(i), Val: pc})
		}
		prog.JumpTables = append(prog.JumpTables, jt)
	}
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}
