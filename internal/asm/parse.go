package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Assemble parses textual assembly into a program. name is used both as
// the program name and as the source file recorded in line tables; the
// physical line numbers of the assembly text become the debug line
// numbers.
//
// Syntax summary (one statement per line, ';' starts a comment):
//
//	.global name size [init ...]   declare a global of size words
//	.table name label ...          declare a jump table of code labels
//	.func name                     begin function
//	.endfunc                       end function
//	label:                         bind a code label
//	op operands                    instruction, e.g. "add r1, r2, r3"
//
// Operands: registers (r0..r15, sp, fp, rz), integer immediates, $sym for
// the address of a global, @func for a function entry pc, and bare label
// or function names for branch/call targets. Memory operands are written
// [reg+off] or [reg-off].
func Assemble(name, src string) (*isa.Program, error) {
	b := NewBuilder(name)
	file := b.File(name)
	lines := strings.Split(src, "\n")

	syms := map[string]int64{} // $name -> address
	labels := map[string]LabelID{}
	label := func(n string) LabelID {
		l, ok := labels[n]
		if !ok {
			l = b.NewLabel()
			labels[n] = l
		}
		return l
	}

	// Pass A: allocate globals and jump tables so that $sym operands can
	// be resolved while emitting code.
	for ln, raw := range lines {
		f := fields(raw)
		if len(f) == 0 {
			continue
		}
		switch f[0] {
		case ".global":
			if len(f) < 3 {
				return nil, fmt.Errorf("%s:%d: .global needs name and size", name, ln+1)
			}
			size, err := strconv.ParseInt(f[2], 10, 64)
			if err != nil || size <= 0 {
				return nil, fmt.Errorf("%s:%d: bad global size %q", name, ln+1, f[2])
			}
			if _, dup := syms[f[1]]; dup {
				return nil, fmt.Errorf("%s:%d: duplicate global %q", name, ln+1, f[1])
			}
			addr := b.Global(f[1], size)
			syms[f[1]] = addr
			for i, iv := range f[3:] {
				v, err := strconv.ParseInt(iv, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad init %q", name, ln+1, iv)
				}
				if int64(i) >= size {
					return nil, fmt.Errorf("%s:%d: more inits than size", name, ln+1)
				}
				b.InitWord(addr+int64(i), v)
			}
		case ".table":
			if len(f) < 3 {
				return nil, fmt.Errorf("%s:%d: .table needs name and labels", name, ln+1)
			}
			var ls []LabelID
			for _, t := range f[2:] {
				ls = append(ls, label(t))
			}
			if _, dup := syms[f[1]]; dup {
				return nil, fmt.Errorf("%s:%d: duplicate table %q", name, ln+1, f[1])
			}
			syms[f[1]] = b.JumpTable(ls)
		}
	}

	// Pass B: emit code.
	for ln, raw := range lines {
		f := fields(raw)
		if len(f) == 0 {
			continue
		}
		b.SetPos(file, int32(ln+1))
		switch {
		case f[0] == ".global" || f[0] == ".table":
			// handled in pass A
		case f[0] == ".func":
			if len(f) != 2 {
				return nil, fmt.Errorf("%s:%d: .func needs a name", name, ln+1)
			}
			b.BeginFunc(f[1])
		case f[0] == ".endfunc":
			b.EndFunc()
		case strings.HasSuffix(f[0], ":"):
			b.Bind(label(strings.TrimSuffix(f[0], ":")))
			if len(f) > 1 {
				if err := emit(b, f[1:], syms, label); err != nil {
					return nil, fmt.Errorf("%s:%d: %v", name, ln+1, err)
				}
			}
		default:
			if err := emit(b, f, syms, label); err != nil {
				return nil, fmt.Errorf("%s:%d: %v", name, ln+1, err)
			}
		}
	}
	return b.Finish()
}

// fields tokenizes an assembly line: strips comments, splits on spaces and
// commas, keeps [reg+off] memory operands as single tokens.
func fields(line string) []string {
	if i := strings.IndexByte(line, ';'); i >= 0 {
		line = line[:i]
	}
	line = strings.ReplaceAll(line, ",", " ")
	return strings.Fields(line)
}

var opByName = map[string]isa.Op{
	"nop": isa.NOP, "movi": isa.MOVI, "mov": isa.MOV,
	"load": isa.LOAD, "store": isa.STORE, "push": isa.PUSH, "pop": isa.POP,
	"add": isa.ADD, "sub": isa.SUB, "mul": isa.MUL, "div": isa.DIV,
	"mod": isa.MOD, "and": isa.AND, "or": isa.OR, "xor": isa.XOR,
	"shl": isa.SHL, "shr": isa.SHR, "addi": isa.ADDI, "muli": isa.MULI,
	"cmpeq": isa.CMPEQ, "cmpne": isa.CMPNE, "cmplt": isa.CMPLT, "cmple": isa.CMPLE,
	"br": isa.BR, "brz": isa.BRZ, "jmp": isa.JMP, "jmpi": isa.JMPI,
	"call": isa.CALL, "calli": isa.CALLI, "ret": isa.RET,
	"spawn": isa.SPAWN, "join": isa.JOIN, "lock": isa.LOCK, "unlock": isa.UNLOCK,
	"wait": isa.WAIT, "signal": isa.SIGNAL,
	"syscall": isa.SYSCALL, "assert": isa.ASSERT, "halt": isa.HALT,
}

var regByName = map[string]isa.Reg{
	"sp": isa.SP, "fp": isa.FP, "rz": isa.RZ,
}

func init() {
	for r := isa.R0; r <= isa.R15; r++ {
		regByName[fmt.Sprintf("r%d", int(r))] = r
	}
}

func parseReg(tok string) (isa.Reg, error) {
	if r, ok := regByName[tok]; ok {
		return r, nil
	}
	return 0, fmt.Errorf("bad register %q", tok)
}

// parseImm resolves an immediate operand: integer literal or $sym.
func parseImm(tok string, syms map[string]int64) (int64, error) {
	if strings.HasPrefix(tok, "$") {
		a, ok := syms[tok[1:]]
		if !ok {
			return 0, fmt.Errorf("unknown symbol %q", tok)
		}
		return a, nil
	}
	return strconv.ParseInt(tok, 10, 64)
}

// parseMem parses a [reg+off] or [reg-off] operand.
func parseMem(tok string, syms map[string]int64) (isa.Reg, int64, error) {
	if !strings.HasPrefix(tok, "[") || !strings.HasSuffix(tok, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", tok)
	}
	inner := tok[1 : len(tok)-1]
	sep := strings.IndexAny(inner, "+-")
	if sep < 0 {
		r, err := parseReg(inner)
		return r, 0, err
	}
	r, err := parseReg(inner[:sep])
	if err != nil {
		return 0, 0, err
	}
	off, err := parseImm(strings.TrimPrefix(inner[sep:], "+"), syms)
	if err != nil {
		return 0, 0, err
	}
	return r, off, nil
}

func emit(b *Builder, f []string, syms map[string]int64, label func(string) LabelID) error {
	op, ok := opByName[f[0]]
	if !ok {
		return fmt.Errorf("unknown instruction %q", f[0])
	}
	argc := len(f) - 1
	need := func(n int) error {
		if argc != n {
			return fmt.Errorf("%s wants %d operands, got %d", f[0], n, argc)
		}
		return nil
	}
	switch op {
	case isa.NOP, isa.RET, isa.HALT:
		if err := need(0); err != nil {
			return err
		}
		b.Emit(isa.Instr{Op: op})
	case isa.MOVI:
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(f[1])
		if err != nil {
			return err
		}
		if strings.HasPrefix(f[2], "@") {
			b.FuncAddr(rd, f[2][1:])
			return nil
		}
		imm, err := parseImm(f[2], syms)
		if err != nil {
			return err
		}
		b.MovImm(rd, imm)
	case isa.MOV:
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(f[1])
		if err != nil {
			return err
		}
		rs, err := parseReg(f[2])
		if err != nil {
			return err
		}
		b.Mov(rd, rs)
	case isa.LOAD:
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(f[1])
		if err != nil {
			return err
		}
		base, off, err := parseMem(f[2], syms)
		if err != nil {
			return err
		}
		b.Load(rd, base, off)
	case isa.STORE:
		if err := need(2); err != nil {
			return err
		}
		base, off, err := parseMem(f[1], syms)
		if err != nil {
			return err
		}
		rs, err := parseReg(f[2])
		if err != nil {
			return err
		}
		b.Store(base, off, rs)
	case isa.PUSH, isa.JOIN, isa.LOCK, isa.UNLOCK, isa.ASSERT, isa.JMPI, isa.CALLI, isa.SIGNAL:
		if err := need(1); err != nil {
			return err
		}
		rs, err := parseReg(f[1])
		if err != nil {
			return err
		}
		b.Emit(isa.Instr{Op: op, Rs1: rs})
	case isa.POP:
		if err := need(1); err != nil {
			return err
		}
		rd, err := parseReg(f[1])
		if err != nil {
			return err
		}
		b.Emit(isa.Instr{Op: op, Rd: rd})
	case isa.WAIT:
		if err := need(2); err != nil {
			return err
		}
		cv, err := parseReg(f[1])
		if err != nil {
			return err
		}
		mx, err := parseReg(f[2])
		if err != nil {
			return err
		}
		b.Emit(isa.Instr{Op: isa.WAIT, Rs1: cv, Rs2: mx})
	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.MOD, isa.AND, isa.OR,
		isa.XOR, isa.SHL, isa.SHR, isa.CMPEQ, isa.CMPNE, isa.CMPLT, isa.CMPLE:
		if err := need(3); err != nil {
			return err
		}
		rd, err := parseReg(f[1])
		if err != nil {
			return err
		}
		rs1, err := parseReg(f[2])
		if err != nil {
			return err
		}
		rs2, err := parseReg(f[3])
		if err != nil {
			return err
		}
		b.Op(op, rd, rs1, rs2)
	case isa.ADDI, isa.MULI:
		if err := need(3); err != nil {
			return err
		}
		rd, err := parseReg(f[1])
		if err != nil {
			return err
		}
		rs1, err := parseReg(f[2])
		if err != nil {
			return err
		}
		imm, err := parseImm(f[3], syms)
		if err != nil {
			return err
		}
		b.Emit(isa.Instr{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
	case isa.BR, isa.BRZ:
		if err := need(2); err != nil {
			return err
		}
		rs, err := parseReg(f[1])
		if err != nil {
			return err
		}
		b.Branch(op, rs, label(f[2]))
	case isa.JMP:
		if err := need(1); err != nil {
			return err
		}
		b.Jump(label(f[1]))
	case isa.CALL:
		if err := need(1); err != nil {
			return err
		}
		b.Call(f[1])
	case isa.SPAWN:
		if err := need(3); err != nil {
			return err
		}
		rd, err := parseReg(f[1])
		if err != nil {
			return err
		}
		arg, err := parseReg(f[3])
		if err != nil {
			return err
		}
		b.Spawn(rd, f[2], arg)
	case isa.SYSCALL:
		if err := need(3); err != nil {
			return err
		}
		rd, err := parseReg(f[1])
		if err != nil {
			return err
		}
		num, err := parseImm(f[2], syms)
		if err != nil {
			return err
		}
		rs, err := parseReg(f[3])
		if err != nil {
			return err
		}
		b.Emit(isa.Instr{Op: op, Rd: rd, Rs1: rs, Imm: num})
	default:
		return fmt.Errorf("unhandled op %v", op)
	}
	return nil
}
