package drdebug_test

import (
	"fmt"
	"log"

	drdebug "repro"
)

// The cyclic-debugging loop: compile, capture a failing run into a
// pinball, replay it deterministically, and slice the failure.
func Example() {
	prog, err := drdebug.Compile("ex.c", `
int a;
int b;
int main() {
	a = 2;
	b = a * 3;
	assert(b == 7);
	return 0;
}`)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := drdebug.RecordFailure(prog, drdebug.LogConfig{Seed: 1}, 0)
	if err != nil {
		log.Fatal(err)
	}
	// Two replays observe the identical failure.
	for i := 0; i < 2; i++ {
		m, _ := drdebug.Replay(prog, sess.Pinball)
		fmt.Println("replay stopped:", m.Stopped())
	}
	sl, err := sess.SliceAtFailure()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slice: %d of %d instructions\n", sl.Stats.Members, sl.Stats.TraceLen)
	// Output:
	// replay stopped: failure
	// replay stopped: failure
	// slice: 14 of 16 instructions
}

// Execution slices (paper §4): relog the region keeping only the slice,
// then step statement-to-statement with live state.
func ExampleSession_NewStepper() {
	prog, err := drdebug.Compile("ex.c", `
int x;
int y;
int noise;
int main() {
	int i;
	x = 7;
	for (i = 0; i < 50; i++) { noise = noise + i; }
	y = x + 1;
	assert(y == 0);
	return 0;
}`)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := drdebug.RecordFailure(prog, drdebug.LogConfig{Seed: 1}, 0)
	if err != nil {
		log.Fatal(err)
	}
	sl, err := sess.SliceAtFailure()
	if err != nil {
		log.Fatal(err)
	}
	st, err := sess.NewStepper(sl)
	if err != nil {
		log.Fatal(err)
	}
	for {
		p, err := st.NextStatement()
		if err != nil {
			log.Fatal(err)
		}
		if p == nil {
			break
		}
		// Stops land on the first instruction of each statement, before
		// its store executes.
		x, _ := st.ReadVar("x")
		y, _ := st.ReadVar("y")
		fmt.Printf("%s  x=%d y=%d\n", p.Src, x, y)
	}
	// Output:
	// ex.c:7  x=0 y=0
	// ex.c:9  x=7 y=0
	// ex.c:10  x=7 y=8
}

// Happens-before race detection over a recorded region.
func ExampleSession_DetectRaces() {
	prog, err := drdebug.Compile("ex.c", `
int n;
int w2(int u) { n = n + 1; return 0; }
int main() {
	int t = spawn(w2, 0);
	n = n + 1;
	join(t);
	write(n);
	return 0;
}`)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := drdebug.RecordRegion(prog, drdebug.LogConfig{Seed: 2, MeanQuantum: 3}, drdebug.RegionSpec{})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sess.DetectRaces()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("races detected:", len(rep.Races) > 0)
	// Output:
	// races detected: true
}
