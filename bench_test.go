package drdebug_test

// One benchmark per evaluation table and figure (see DESIGN.md's
// experiment index), plus microbenchmarks of the substrate and ablations
// of the slicer's design choices. `go test -bench=.` runs everything at
// reduced scale; `drbench` regenerates the full tables.

import (
	"io"
	"testing"

	drdebug "repro"
	"repro/internal/bench"
	"repro/internal/pinplay"
	"repro/internal/slice"
	"repro/internal/tracer"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func quietCfg() bench.Config {
	cfg := bench.DefaultConfig(io.Discard)
	cfg.SweepLengths = []int64{5_000, 20_000}
	cfg.RegionLen = 20_000
	cfg.RegionLenLarge = 50_000
	cfg.Slices = 5
	return cfg
}

// BenchmarkTable1 exposes and records the three Table 1 bugs.
func BenchmarkTable1(b *testing.B) {
	cfg := quietCfg()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 measures the buggy-execution-region workflow (log,
// replay, slice, slice pinball) for the three bugs.
func BenchmarkTable2(b *testing.B) {
	cfg := quietCfg()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 is Table 2's workflow over whole-program regions.
func BenchmarkTable3(b *testing.B) {
	cfg := quietCfg()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// regionPinball logs one region of a workload for the figure benchmarks.
func regionPinball(b *testing.B, name string, length int64) (*drdebug.Program, *drdebug.Pinball) {
	b.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := w.Program()
	if err != nil {
		b.Fatal(err)
	}
	pb, err := pinplay.Log(prog, pinplay.LogConfig{Seed: 1, Input: w.Input(4, 1<<40)},
		pinplay.RegionSpec{SkipMain: 1000, LengthMain: length})
	if err != nil {
		b.Fatal(err)
	}
	return prog, pb
}

// BenchmarkFig11Logging measures region logging per PARSEC-like workload
// (the Figure 11 measurement at one length).
func BenchmarkFig11Logging(b *testing.B) {
	for _, w := range workloads.Parsec() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			prog, err := w.Program()
			if err != nil {
				b.Fatal(err)
			}
			_ = prog
			for i := 0; i < b.N; i++ {
				if _, err := pinplay.Log(prog, pinplay.LogConfig{Seed: 1, Input: w.Input(4, 1<<40)},
					pinplay.RegionSpec{SkipMain: 1000, LengthMain: 20_000}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig12Replay measures deterministic replay of those regions.
func BenchmarkFig12Replay(b *testing.B) {
	for _, w := range workloads.Parsec() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			prog, pb := regionPinball(b, w.Name, 20_000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pinplay.Replay(prog, pb, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig13Pruning measures the pruned-vs-unpruned slicing pass of
// Figure 13 on one SPEC OMP-like workload.
func BenchmarkFig13Pruning(b *testing.B) {
	prog, pb := regionPinball(b, "mgrid", 20_000)
	sess := drdebug.Open(prog, pb)
	tr, err := sess.Trace()
	if err != nil {
		b.Fatal(err)
	}
	crits := slice.LastReadsInRegion(tr, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, opts := range []slice.Options{
			{MaxSave: 10, ControlDeps: true},
			slice.DefaultOptions(),
		} {
			s, err := slice.New(prog, tr, opts)
			if err != nil {
				b.Fatal(err)
			}
			for _, c := range crits {
				if _, err := s.Slice(c); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkFig14ExecSlice measures the execution-slice pipeline (slice ->
// exclusions -> relog -> slice replay) of Figure 14.
func BenchmarkFig14ExecSlice(b *testing.B) {
	prog, pb := regionPinball(b, "blackscholes", 20_000)
	sess := drdebug.Open(prog, pb)
	tr, err := sess.Trace()
	if err != nil {
		b.Fatal(err)
	}
	slicer, err := sess.Slicer()
	if err != nil {
		b.Fatal(err)
	}
	crit := slice.LastReadsInRegion(tr, 1)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sl, err := slicer.Slice(crit)
		if err != nil {
			b.Fatal(err)
		}
		spb, _, err := sess.ExecutionSlice(sl)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := pinplay.Replay(prog, spb, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSlicingOverhead measures trace collection plus one slice — the
// Section 7 "slicing overhead" numbers.
func BenchmarkSlicingOverhead(b *testing.B) {
	prog, pb := regionPinball(b, "dedup", 20_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess := drdebug.Open(prog, pb)
		tr, err := sess.Trace()
		if err != nil {
			b.Fatal(err)
		}
		s, err := sess.Slicer()
		if err != nil {
			b.Fatal(err)
		}
		crit := slice.LastReadsInRegion(tr, 1)[0]
		if _, err := s.Slice(crit); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate microbenchmarks ---

// BenchmarkVMExecution measures raw interpreter speed (no tracing).
func BenchmarkVMExecution(b *testing.B) {
	w, _ := workloads.ByName("blackscholes")
	prog, err := w.Program()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var instrs int64
	for i := 0; i < b.N; i++ {
		m := vm.New(prog, vm.Config{
			Sched:    vm.NewRandomScheduler(1, 1000),
			Env:      vm.NewNativeEnv(w.Input(4, 1<<40), 1),
			MaxSteps: 200_000,
		})
		m.Run()
		instrs += m.Steps()
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkVMExecutionTraced measures interpreter speed with the tracing
// pintool attached (the slowdown the paper's tracing step pays).
func BenchmarkVMExecutionTraced(b *testing.B) {
	w, _ := workloads.ByName("blackscholes")
	prog, err := w.Program()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var instrs int64
	for i := 0; i < b.N; i++ {
		m := vm.New(prog, vm.Config{
			Sched:    vm.NewRandomScheduler(1, 1000),
			Env:      vm.NewNativeEnv(w.Input(4, 1<<40), 1),
			MaxSteps: 200_000,
		})
		col := tracer.NewCollector(m)
		m.SetTracer(col)
		m.Run()
		instrs += m.Steps()
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkGlobalTraceBuild measures the §3(ii) topological merge.
func BenchmarkGlobalTraceBuild(b *testing.B) {
	prog, pb := regionPinball(b, "dedup", 50_000)
	b.ResetTimer()
	total := pb.TotalQuantumInstrs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := pinplay.NewReplayMachine(prog, pb, nil)
		col := tracer.NewCollector(m)
		m.SetTracer(col)
		// Replay exactly the recorded region; the workload itself is
		// endless, so running the machine to a stop would never return.
		for executed := int64(0); executed < total && m.StepOne(); executed++ {
		}
		b.StartTimer()
		if err := col.Trace().BuildGlobal(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benchmarks (DESIGN.md design choices) ---

// BenchmarkAblationLPBlockSize compares backward-traversal cost across LP
// block sizes (1 block per entry ~ no skipping vs the default).
func BenchmarkAblationLPBlockSize(b *testing.B) {
	prog, pb := regionPinball(b, "streamcluster", 50_000)
	sess := drdebug.Open(prog, pb)
	tr, err := sess.Trace()
	if err != nil {
		b.Fatal(err)
	}
	crit := slice.LastReadsInRegion(tr, 1)[0]
	for _, bs := range []int{64, 1024, 16384} {
		bs := bs
		b.Run(map[int]string{64: "block64", 1024: "block1k", 16384: "block16k"}[bs], func(b *testing.B) {
			s, err := slice.New(prog, tr, slice.Options{MaxSave: 10, ControlDeps: true, LPBlock: bs})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Slice(crit); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRefinement compares forward-pass cost with and without
// §5.1 CFG refinement.
func BenchmarkAblationRefinement(b *testing.B) {
	prog, pb := regionPinball(b, "vips", 20_000)
	sess := drdebug.Open(prog, pb)
	tr, err := sess.Trace()
	if err != nil {
		b.Fatal(err)
	}
	for _, refine := range []bool{true, false} {
		refine := refine
		name := "refined"
		if !refine {
			name = "approximate"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := slice.New(prog, tr, slice.Options{
					MaxSave: 10, ControlDeps: true, DisableRefinement: !refine,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReverseStepBack measures the cost of one backward step
// (restore nearest checkpoint + replay forward) at different checkpoint
// intervals — the space/time trade-off of the reverse-debugging
// extension.
func BenchmarkReverseStepBack(b *testing.B) {
	prog, pb := regionPinball(b, "canneal", 50_000)
	sess := drdebug.Open(prog, pb)
	for _, interval := range []int64{1_000, 10_000, 50_000} {
		interval := interval
		name := map[int64]string{1_000: "ckpt1k", 10_000: "ckpt10k", 50_000: "ckpt50k"}[interval]
		b.Run(name, func(b *testing.B) {
			rr := sess.NewReverseReplayer(interval)
			if err := rr.RunTo(rr.Total()); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rr.StepBack(500); err != nil {
					b.Fatal(err)
				}
				if err := rr.RunTo(rr.Total()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRaceDetection measures the happens-before pass over a traced
// region.
func BenchmarkRaceDetection(b *testing.B) {
	prog, pb := regionPinball(b, "dedup", 50_000)
	sess := drdebug.Open(prog, pb)
	if _, err := sess.Trace(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.DetectRaces(); err != nil {
			b.Fatal(err)
		}
	}
}
