package drdebug_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	drdebug "repro"
)

const apiDemoSrc = `
int total;
int mtx;
int adder(int n) {
	int i;
	for (i = 0; i < n; i++) {
		lock(&mtx);
		total = total + 1;
		unlock(&mtx);
	}
	return 0;
}
int main() {
	int t = spawn(adder, 25);
	adder(25);
	join(t);
	assert(total == 51);
	return 0;
}`

func TestPublicAPIWorkflow(t *testing.T) {
	prog, err := drdebug.Compile("api.c", apiDemoSrc)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := drdebug.RecordFailure(prog, drdebug.LogConfig{Seed: 1, MeanQuantum: 15}, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Replay.
	m, err := drdebug.Replay(prog, sess.Pinball)
	if err != nil {
		t.Fatal(err)
	}
	if m.Failure() == nil {
		t.Fatal("replay did not reproduce the failure")
	}

	// Pinball persistence.
	dir := t.TempDir()
	pbPath := filepath.Join(dir, "api.pinball")
	if err := sess.Pinball.Save(pbPath); err != nil {
		t.Fatal(err)
	}
	if _, err := drdebug.LoadPinball(pbPath); err != nil {
		t.Fatal(err)
	}
	sess2, err := drdebug.LoadSession(prog, pbPath)
	if err != nil {
		t.Fatal(err)
	}

	// Slice + slice file.
	sl, err := sess2.SliceAtFailure()
	if err != nil {
		t.Fatal(err)
	}
	slPath := filepath.Join(dir, "api.slice")
	if err := sess2.SaveSlice(sl, slPath); err != nil {
		t.Fatal(err)
	}
	sf, err := drdebug.LoadSliceFile(slPath)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := sf.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "api.c") {
		t.Error("slice text missing source references")
	}

	// Execution slice + stepping.
	st, err := sess2.NewStepper(sl)
	if err != nil {
		t.Fatal(err)
	}
	stops := 0
	for {
		p, err := st.NextStatement()
		if err != nil {
			t.Fatal(err)
		}
		if p == nil {
			break
		}
		stops++
	}
	if stops == 0 {
		t.Error("stepper made no stops")
	}
}

func TestCompileFileAndAssemble(t *testing.T) {
	dir := t.TempDir()
	cPath := filepath.Join(dir, "p.c")
	if err := writeFile(cPath, "int main() { write(7); return 0; }"); err != nil {
		t.Fatal(err)
	}
	if _, err := drdebug.CompileFile(cPath); err != nil {
		t.Fatalf("CompileFile .c: %v", err)
	}
	sPath := filepath.Join(dir, "p.s")
	if err := writeFile(sPath, ".func main\n halt\n.endfunc\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := drdebug.CompileFile(sPath); err != nil {
		t.Fatalf("CompileFile .s: %v", err)
	}
	if _, err := drdebug.CompileFile(filepath.Join(dir, "missing.c")); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := drdebug.Assemble("a.s", ".func main\n nop\n halt\n.endfunc\n"); err != nil {
		t.Error(err)
	}
}

func TestWorkloadRegistryAPI(t *testing.T) {
	if len(drdebug.Workloads()) != 16 {
		t.Errorf("Workloads() = %d, want 16", len(drdebug.Workloads()))
	}
	w, err := drdebug.WorkloadByName("mgrid")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Program(); err != nil {
		t.Fatal(err)
	}
	if in := w.Input(0, 100); len(in) != 2 || in[0] != 4 {
		t.Errorf("default input = %v", in)
	}
}

func TestDefaultSliceOptions(t *testing.T) {
	o := drdebug.DefaultSliceOptions()
	if !o.PruneSaveRestore || !o.ControlDeps || o.MaxSave != 10 {
		t.Errorf("unexpected defaults: %+v", o)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
