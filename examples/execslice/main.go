// Execslice: the paper's Section 4 feature — turn a dynamic slice into an
// execution slice, relog it into a (much smaller) slice pinball, and step
// forward from one slice statement to the next while examining variable
// values. This forward-stepping-through-a-slice capability is the one the
// paper notes no prior slicing tool provides.
package main

import (
	"fmt"
	"log"

	drdebug "repro"
)

// A program where most work is irrelevant noise: the bug chain is
// x -> y -> z, buried in heavy unrelated computation.
const src = `
int x;
int y;
int z;
int noise;
int churn(int n) {
	int i;
	int acc = 0;
	for (i = 0; i < n; i++) { acc = acc + i * i; }
	noise = noise + acc;
	return acc;
}
int main() {
	churn(500);
	x = read();
	churn(500);
	y = x * 2;
	churn(500);
	z = y + 1;
	churn(500);
	assert(z == 100);
	return 0;
}`

func main() {
	prog, err := drdebug.Compile("noise.c", src)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := drdebug.RecordFailure(prog, drdebug.LogConfig{Seed: 1, Input: []int64{21}}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("region pinball: %d instructions\n", sess.Pinball.RegionInstrs)

	sl, err := sess.SliceAtFailure()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failure slice: %d instructions\n", sl.Stats.Members)

	// Relog into a slice pinball: everything outside the slice is
	// skipped, its side effects injected.
	spb, exclusions, err := sess.ExecutionSlice(sl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slice pinball: %d instructions (%.1f%% of the region), %d exclusion regions, %d injections\n",
		spb.RegionInstrs, 100*float64(spb.RegionInstrs)/float64(sess.Pinball.RegionInstrs),
		len(exclusions), len(spb.Injections))
	for i, ex := range exclusions {
		if i == 3 {
			fmt.Printf("  ... and %d more\n", len(exclusions)-3)
			break
		}
		fmt.Printf("  exclude %s\n", ex)
	}

	// Step statement-by-statement through the execution slice, reading
	// program state at each stop — live debugging of just the slice.
	st, err := sess.NewStepperFromPinball(spb, sl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("stepping the execution slice:")
	for {
		p, err := st.NextStatement()
		if err != nil {
			log.Fatal(err)
		}
		if p == nil {
			break
		}
		x, _ := st.ReadVar("x")
		y, _ := st.ReadVar("y")
		z, _ := st.ReadVar("z")
		val := ""
		if p.HasValue {
			val = fmt.Sprintf(" (computed %d)", p.Value)
		}
		fmt.Printf("  stop at %-12s%s   x=%d y=%d z=%d\n", p.Src, val, x, y, z)
	}
	fmt.Println("end of execution slice (the assert reproduced the failure)")
}
