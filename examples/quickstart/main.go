// Quickstart: the full DrDebug loop on a small multi-threaded program —
// compile, capture a failing run into a pinball, replay it
// deterministically, and compute the dynamic slice of the failure.
package main

import (
	"fmt"
	"log"

	drdebug "repro"
)

// A bank-account race: two threads do read-modify-write deposits without
// holding the lock for the whole update.
const src = `
int balance;
int mtx;
int deposit(int amount) {
	lock(&mtx);
	int cur = balance;
	unlock(&mtx);
	yield();
	lock(&mtx);
	balance = cur + amount;   // lost update: stale cur
	unlock(&mtx);
	return balance;
}
int teller(int amount) {
	int i;
	for (i = 0; i < 10; i++) { deposit(amount); }
	return 0;
}
int main() {
	int t1 = spawn(teller, 5);
	int t2 = spawn(teller, 7);
	join(t1);
	join(t2);
	assert(balance == 120);
	return 0;
}`

func main() {
	prog, err := drdebug.Compile("bank.c", src)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Expose and record: search schedules until the assert fires, and
	// capture that execution into a pinball.
	var sess *drdebug.Session
	for seed := int64(1); seed < 100; seed++ {
		sess, err = drdebug.RecordFailure(prog, drdebug.LogConfig{Seed: seed, MeanQuantum: 10}, 0)
		if err == nil {
			fmt.Printf("seed %d exposed the bug: %v\n", seed, sess.Pinball.Failure)
			break
		}
	}
	if sess == nil {
		log.Fatal("no schedule exposed the bug")
	}
	fmt.Printf("pinball: %d instructions across %d schedule quanta\n",
		sess.Pinball.RegionInstrs, len(sess.Pinball.Quanta))

	// 2. Cyclic debugging: every replay reproduces the identical run.
	for i := 1; i <= 3; i++ {
		m, err := sess.Replay(nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replay %d: stop=%v balance-cell failure at pc %d\n", i, m.Stopped(), m.Failure().PC)
	}

	// 3. Dynamic slice of the failing assert: the statements that
	// actually produced the bad balance.
	sl, err := sess.SliceAtFailure()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failure slice: %d of %d dynamic instructions\n", sl.Stats.Members, sl.Stats.TraceLen)
	tr, err := sess.Trace()
	if err != nil {
		log.Fatal(err)
	}
	seen := map[string]bool{}
	for _, m := range sl.Members {
		src := prog.SourceOf(tr.Entry(m).PC)
		if !seen[src] {
			seen[src] = true
			fmt.Println("  in slice:", src)
		}
	}
}
