// Maple: expose a hard-to-reproduce order violation with the Maple
// workflow (profiling + active scheduling), then hand the recorded
// pinball to the interactive debugger — the paper's Maple/DrDebug
// integration, scripted.
package main

import (
	"fmt"
	"log"
	"strings"

	drdebug "repro"
)

// The initialisation race: the worker's warm-up loop makes the racy read
// essentially unreachable under plain schedules, so only an active
// scheduler (or extreme luck) exposes it.
const src = `
int config;
int result;
int worker(int u) {
	int i;
	int w = 0;
	for (i = 0; i < 4000; i++) { w = w + i; }
	result = config * 2;
	assert(result == 84);
	return 0;
}
int main() {
	int t = spawn(worker, 0);
	config = 42;
	join(t);
	write(result);
	return 0;
}`

func main() {
	prog, err := drdebug.Compile("init.c", src)
	if err != nil {
		log.Fatal(err)
	}

	// Plain runs pass: demonstrate with a handful of seeds.
	passes := 0
	for seed := int64(1); seed <= 5; seed++ {
		if _, err := drdebug.RecordFailure(prog, drdebug.LogConfig{Seed: seed}, 0); err != nil {
			passes++
		}
	}
	fmt.Printf("%d/5 plain schedules pass — the bug hides\n", passes)

	// Maple: profile, predict the flipped ordering, force it.
	res, err := drdebug.FindBug(nil, prog, drdebug.LogConfig{Seed: 1, MeanQuantum: 500}, drdebug.MapleOptions{ProfileRuns: 4})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Exposed {
		log.Fatal("maple did not expose the bug")
	}
	fmt.Printf("maple exposed the bug (predicted %d interleavings, %d attempts): %v\n",
		res.RootsPredicted, res.Attempts, res.Pinball.Failure)

	// Drive the recorded pinball through the interactive debugger, the
	// way a user would.
	d := drdebug.NewDebugger(prog, drdebug.LogConfig{Seed: 1})
	d.UseSession(drdebug.Open(prog, res.Pinball))
	script := []string{
		"break worker",
		"continue",
		"print config",
		"continue",
		"slice",
		"where",
	}
	var out strings.Builder
	for _, cmd := range script {
		out.Reset()
		if err := d.Execute(cmd, &out); err != nil {
			fmt.Printf("(drdebug) %s\nerror: %v\n", cmd, err)
			continue
		}
		fmt.Printf("(drdebug) %s\n%s", cmd, out.String())
	}
}
