// Reverse: the checkpointing-based reverse debugging the paper sketches
// in its related-work discussion, plus happens-before race detection —
// both layered on the deterministic replay substrate. The session runs
// the debugger in batch mode, like `drdebug -x`.
package main

import (
	"fmt"
	"log"
	"strings"

	drdebug "repro"
)

const src = `
int balance;
int audit;
int teller(int n) {
	int i;
	for (i = 0; i < n; i++) {
		// BUG: unlocked read-modify-write of the shared balance.
		int cur = balance;
		yield();
		balance = cur + 1;
	}
	return 0;
}
int main() {
	int t1 = spawn(teller, 40);
	int t2 = spawn(teller, 40);
	join(t1);
	join(t2);
	audit = balance;
	assert(audit == 80);
	return 0;
}`

func main() {
	prog, err := drdebug.Compile("bank.c", src)
	if err != nil {
		log.Fatal(err)
	}
	var sess *drdebug.Session
	for seed := int64(1); seed < 200; seed++ {
		sess, err = drdebug.RecordFailure(prog, drdebug.LogConfig{Seed: seed, MeanQuantum: 7}, 0)
		if err == nil {
			fmt.Printf("lost-update bug exposed with seed %d\n", seed)
			break
		}
	}
	if sess == nil {
		log.Fatal("bug not exposed")
	}

	d := drdebug.NewDebugger(prog, drdebug.LogConfig{Seed: 1})
	d.UseSession(sess)

	// A debugging session that goes *backwards*: run to the failure,
	// detect the races, then step back in time and watch the balance
	// shrink as history rewinds.
	script := []string{
		"continue",          // to the assert failure
		"print balance",     // the bad final value
		"races",             // happens-before analysis over the region
		"reverse-stepi 200", // rewind 200 instructions
		"print balance",     // earlier value, deterministically restored
		"reverse-stepi 2000",
		"print balance",
		"continue",      // forward again: the same failure reproduces
		"print balance", // and the same final value
	}
	for _, cmd := range script {
		var out strings.Builder
		fmt.Printf("(drdebug) %s\n", cmd)
		if err := d.Execute(cmd, &out); err != nil {
			fmt.Printf("error: %v\n", err)
			continue
		}
		fmt.Print(out.String())
	}
}
