// Datarace: debugging the pbzip2 bug from the paper's Table 1 — expose
// the race with Maple's active scheduler, record the buggy execution,
// and navigate the dynamic slice backwards from the symptom to the root
// cause, exactly the paper's case-study workflow.
package main

import (
	"fmt"
	"log"

	drdebug "repro"
)

func main() {
	wl, err := drdebug.WorkloadByName("pbzip2")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := wl.Program()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bug under study:", wl.Description)

	// Expose the race. Maple profiles a few runs, predicts untested
	// inter-thread orderings and forces them; every attempt is logged so
	// the failing one is immediately a replayable pinball.
	res, err := drdebug.FindBug(nil, prog, drdebug.LogConfig{
		Seed: 1, MeanQuantum: 20, Input: wl.Input(3, 40),
	}, drdebug.MapleOptions{ProfileRuns: 4})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Exposed {
		log.Fatal("maple did not expose the bug")
	}
	if res.DuringProfiling {
		fmt.Println("bug exposed during profiling runs")
	} else {
		fmt.Printf("bug exposed by forcing interleaving %v (%d attempts)\n", res.Root, res.Attempts)
	}
	fmt.Printf("captured failure: %v\n", res.Pinball.Failure)

	// Open a debug session on the pinball and slice the failure.
	sess := drdebug.Open(prog, res.Pinball)
	sl, err := sess.SliceAtFailure()
	if err != nil {
		log.Fatal(err)
	}
	tr, err := sess.Trace()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failure slice: %d of %d dynamic instructions\n", sl.Stats.Members, sl.Stats.TraceLen)

	// Navigate the dependence edges backwards from the symptom — the
	// KDbg "Activate" workflow in text form. Cross-thread edges are the
	// interesting ones for a race.
	fmt.Println("backward dependence navigation from the assert:")
	shown := 0
	for i := len(sl.Deps) - 1; i >= 0 && shown < 8; i-- {
		d := sl.Deps[i]
		if d.From.Tid == d.To.Tid {
			continue
		}
		from := tr.Entry(d.From)
		to := tr.Entry(d.To)
		fmt.Printf("  T%d %s  <-%s-  T%d %s\n",
			d.From.Tid, prog.SourceOf(from.PC), d.Kind, d.To.Tid, prog.SourceOf(to.PC))
		shown++
	}
	if shown == 0 {
		fmt.Println("  (no cross-thread dependences in slice)")
	}

	// The root cause: main's teardown writing fifoValid while the
	// compressors still check it.
	sym := prog.SymbolByName("fifoValid")
	for _, m := range sl.Members {
		e := tr.Entry(m)
		if e.MemIsWrite && e.EffAddr == sym.Addr && e.MemVal == 0 {
			fmt.Printf("root cause found in slice: thread %d destroys fifo->mut at %s\n",
				e.Tid, prog.SourceOf(e.PC))
		}
	}
}
