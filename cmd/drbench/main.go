// Command drbench regenerates the paper's evaluation tables and figures
// on the Go substrate (see DESIGN.md for the experiment index).
//
// Usage:
//
//	drbench -experiment all
//	drbench -experiment table2
//	drbench -experiment fig11 -scale 10     # 10x longer regions
//	drbench -experiment slicebench -workers 8 -json BENCH_slice.json
//	drbench -experiment durbench               # durability write overhead
//	drbench -experiment ringbench              # flight-recorder ring overhead
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all",
			"one of: table1, table2, table3, fig11, fig12, fig13, fig14, slicing, slicebench, ringbench, durbench, ablation, all")
		scale    = flag.Int64("scale", 1, "multiply all region lengths by this factor")
		threads  = flag.Int64("threads", 4, "worker thread count")
		slices   = flag.Int("slices", 10, "slicing criteria per region")
		seed     = flag.Int64("seed", 1, "scheduling seed")
		workers  = flag.Int("workers", 0, "parallel slicing workers for slicebench (0 = GOMAXPROCS)")
		jsonPath = flag.String("json", "",
			"where slicebench/durbench write their JSON report (default BENCH_slice.json / BENCH_durability.json)")
	)
	flag.Parse()

	cfg := bench.DefaultConfig(os.Stdout)
	cfg.Threads = *threads
	cfg.Slices = *slices
	cfg.Seed = *seed
	for i := range cfg.SweepLengths {
		cfg.SweepLengths[i] *= *scale
	}
	cfg.RegionLen *= *scale
	cfg.RegionLenLarge *= *scale

	if err := run(*experiment, cfg, *workers, *jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "drbench:", err)
		os.Exit(1)
	}
}

func run(experiment string, cfg bench.Config, workers int, jsonPath string) error {
	type exp struct {
		name string
		fn   func(bench.Config) error
	}
	wrap := func(f func(bench.Config) (any, error)) func(bench.Config) error {
		return func(c bench.Config) error { _, err := f(c); return err }
	}
	experiments := []exp{
		{"table1", wrap(func(c bench.Config) (any, error) { return bench.Table1(c) })},
		{"table2", wrap(func(c bench.Config) (any, error) { return bench.Table2(c) })},
		{"table3", wrap(func(c bench.Config) (any, error) { return bench.Table3(c) })},
		{"fig11", wrap(func(c bench.Config) (any, error) { return bench.Figure11(c) })},
		{"fig12", wrap(func(c bench.Config) (any, error) { return bench.Figure12(c) })},
		{"fig13", wrap(func(c bench.Config) (any, error) { return bench.Figure13(c) })},
		{"fig14", wrap(func(c bench.Config) (any, error) { return bench.Figure14(c) })},
		{"slicing", wrap(func(c bench.Config) (any, error) { return bench.SlicingOverhead(c) })},
		{"slicebench", func(c bench.Config) error {
			report, err := bench.SliceBench(c, workers)
			if err != nil {
				return err
			}
			path := jsonPath
			if path == "" {
				path = "BENCH_slice.json"
			}
			if err := bench.WriteSliceBenchJSON(report, path); err != nil {
				return err
			}
			fmt.Printf("JSON report written to %s\n", path)
			return nil
		}},
		{"ringbench", func(c bench.Config) error {
			report, err := bench.RingBench(c)
			if err != nil {
				return err
			}
			path := jsonPath
			if path == "" {
				path = "BENCH_ring.json"
			}
			if err := bench.WriteRingBenchJSON(report, path); err != nil {
				return err
			}
			fmt.Printf("JSON report written to %s\n", path)
			return nil
		}},
		{"durbench", func(c bench.Config) error {
			report, err := bench.DurBench(c)
			if err != nil {
				return err
			}
			path := jsonPath
			if path == "" {
				path = "BENCH_durability.json"
			}
			if err := bench.WriteDurBenchJSON(report, path); err != nil {
				return err
			}
			fmt.Printf("JSON report written to %s\n", path)
			return nil
		}},
		{"ablation", wrap(func(c bench.Config) (any, error) { return bench.Ablation(c) })},
	}
	ran := false
	for _, e := range experiments {
		if experiment != "all" && experiment != e.name {
			continue
		}
		ran = true
		start := time.Now()
		if err := e.fn(cfg); err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Printf("[%s completed in %.1fs]\n\n", e.name, time.Since(start).Seconds())
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", experiment)
	}
	return nil
}
