// Package cli holds the flag plumbing shared by the DrDebug command-line
// tools: program loading (mini-C file, assembly file, or built-in
// workload) and execution configuration.
package cli

import (
	"fmt"
	"strconv"
	"strings"

	drdebug "repro"
)

// LoadProgram resolves -file / -workload into a program. Exactly one must
// be set.
func LoadProgram(file, workload string) (*drdebug.Program, *drdebug.Workload, error) {
	switch {
	case file != "" && workload != "":
		return nil, nil, fmt.Errorf("use either -file or -workload, not both")
	case file != "":
		p, err := drdebug.CompileFile(file)
		return p, nil, err
	case workload != "":
		w, err := drdebug.WorkloadByName(workload)
		if err != nil {
			return nil, nil, err
		}
		p, err := w.Program()
		return p, w, err
	}
	return nil, nil, fmt.Errorf("need -file <src.c|src.s> or -workload <name>")
}

// ParseInput parses "1,2,3" into input words.
func ParseInput(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad input word %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// WorkloadNames returns the registered workload names for usage text.
func WorkloadNames() string {
	var names []string
	for _, w := range drdebug.Workloads() {
		names = append(names, w.Name)
	}
	return strings.Join(names, ", ")
}
