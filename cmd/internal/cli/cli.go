// Package cli holds the flag plumbing shared by the DrDebug command-line
// tools: program loading (mini-C file, assembly file, or built-in
// workload) and execution configuration.
package cli

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	drdebug "repro"
)

// Exit codes shared by the DrDebug tools, so scripts can distinguish
// failure classes:
//
//	1 — usage errors and everything else
//	2 — the pinball file failed to load (corrupt, truncated, wrong
//	    version, not a pinball) or could not be salvaged
//	3 — the pinball loaded, but its replay failed (divergence
//	    checkpoint fired, schedule mismatch, or an execution limit hit)
//	4 — the run completed, but only in degraded mode (a salvaged
//	    pinball, or a divergence recovered at its last good checkpoint)
//	5 — a session phase panicked (isolated by the supervisor)
//	6 — a session phase hung and the watchdog killed it
//	7 — the session daemon refused the request (overloaded, draining,
//	    no live fleet worker, or the pinball's circuit breaker is
//	    open); retry later
//	8 — the fleet answered correctly, but only after re-dispatching the
//	    work away from a dead or straggling worker; the result is
//	    trustworthy, the fleet is degraded
//	9 — the run completed, but the result contains estimated content: a
//	    flight-recorder slice crossed an evicted window whose re-derived
//	    content failed hash verification, so some dependence edges are
//	    best-effort estimates rather than proven replays
//	10 — the content-addressed store could not serve the request: no
//	    store is configured on the daemon, the digest exists nowhere in
//	    the fleet, or every peer that might hold it is unreachable; the
//	    content itself is not known to be bad (that would be 2)
const (
	ExitUsage            = 1
	ExitBadPinball       = 2
	ExitDiverged         = 3
	ExitDegraded         = 4
	ExitPanic            = 5
	ExitHung             = 6
	ExitUnavailable      = 7
	ExitFleetDegraded    = 8
	ExitEstimated        = 9
	ExitStoreUnavailable = 10
)

// ErrDegraded marks runs that finished, but only by degrading: the tool
// produced results from a salvaged pinball or a checkpoint-anchored
// partial replay. Wrap it so scripts get exit code 4 instead of 0.
var ErrDegraded = errors.New("completed in degraded mode")

// ErrEstimated marks runs whose result carries estimated (hash-
// unverified) flight-recorder content — e.g. a slice with estimated
// dependence edges. Wrap it so scripts get exit code 9 instead of 0. It
// outranks ErrDegraded: an estimated result is weaker than a degraded
// but fully verified one.
var ErrEstimated = errors.New("completed with estimated content")

// ExitCode classifies err into the shared exit codes.
func ExitCode(err error) int {
	var pe *drdebug.PanicError
	var he *drdebug.HangError
	switch {
	case err == nil:
		return 0
	case errors.Is(err, ErrEstimated):
		return ExitEstimated
	case errors.Is(err, ErrDegraded):
		return ExitDegraded
	case errors.As(err, &pe):
		return ExitPanic
	case errors.As(err, &he):
		return ExitHung
	case errors.Is(err, drdebug.ErrReplay):
		return ExitDiverged
	case errors.Is(err, drdebug.ErrNotPinball),
		errors.Is(err, drdebug.ErrVersionSkew),
		errors.Is(err, drdebug.ErrTruncated),
		errors.Is(err, drdebug.ErrCorrupt),
		errors.Is(err, drdebug.ErrUnsalvageable):
		return ExitBadPinball
	default:
		return ExitUsage
	}
}

// Fail reports err on stderr — including the first divergent window when
// the failure is a replay divergence — and returns the exit code for it.
func Fail(tool string, err error) int {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	var de *drdebug.DivergenceError
	if errors.As(err, &de) {
		fmt.Fprintf(os.Stderr, "%s: first divergent window: %s\n", tool, de.Div.Window())
	}
	return ExitCode(err)
}

// LoadPinballMaybeSalvage loads a pinball file; when loading fails and
// salvage is allowed, it recovers what it can, reports the repair on
// stderr, and returns degraded=true. Tools that produce results from a
// salvaged pinball must wrap their success in ErrDegraded.
func LoadPinballMaybeSalvage(tool, path string, salvage bool) (pb *drdebug.Pinball, degraded bool, err error) {
	pb, err = drdebug.LoadPinball(path)
	if err == nil || !salvage {
		return pb, false, err
	}
	loadErr := err
	pb, rep, err := drdebug.SalvagePinball(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, loadErr)
		return nil, false, err
	}
	fmt.Fprintf(os.Stderr, "%s: pinball is damaged (%v)\n%s: salvaged: %s\n",
		tool, loadErr, tool, strings.ReplaceAll(rep.Summary(), "\n", "; "))
	return pb, true, nil
}

// Limits builds execution limits from the shared -budget / -deadline
// flag values (0 means unbounded).
func Limits(budget int64, deadline time.Duration) drdebug.Limits {
	return drdebug.Timeout(budget, deadline)
}

// LoadProgram resolves -file / -workload into a program. Exactly one must
// be set.
func LoadProgram(file, workload string) (*drdebug.Program, *drdebug.Workload, error) {
	switch {
	case file != "" && workload != "":
		return nil, nil, fmt.Errorf("use either -file or -workload, not both")
	case file != "":
		p, err := drdebug.CompileFile(file)
		return p, nil, err
	case workload != "":
		w, err := drdebug.WorkloadByName(workload)
		if err != nil {
			return nil, nil, err
		}
		p, err := w.Program()
		return p, w, err
	}
	return nil, nil, fmt.Errorf("need -file <src.c|src.s> or -workload <name>")
}

// ParseInput parses "1,2,3" into input words.
func ParseInput(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad input word %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// WorkloadNames returns the registered workload names for usage text.
func WorkloadNames() string {
	var names []string
	for _, w := range drdebug.Workloads() {
		names = append(names, w.Name)
	}
	return strings.Join(names, ", ")
}
