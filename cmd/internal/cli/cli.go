// Package cli holds the flag plumbing shared by the DrDebug command-line
// tools: program loading (mini-C file, assembly file, or built-in
// workload) and execution configuration.
package cli

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	drdebug "repro"
)

// Exit codes shared by the DrDebug tools, so scripts can distinguish
// failure classes:
//
//	1 — usage errors and everything else
//	2 — the pinball file failed to load (corrupt, truncated, wrong
//	    version, not a pinball)
//	3 — the pinball loaded, but its replay failed (divergence
//	    checkpoint fired, schedule mismatch, or an execution limit hit)
const (
	ExitUsage      = 1
	ExitBadPinball = 2
	ExitDiverged   = 3
)

// ExitCode classifies err into the shared exit codes.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, drdebug.ErrReplay):
		return ExitDiverged
	case errors.Is(err, drdebug.ErrNotPinball),
		errors.Is(err, drdebug.ErrVersionSkew),
		errors.Is(err, drdebug.ErrTruncated),
		errors.Is(err, drdebug.ErrCorrupt):
		return ExitBadPinball
	default:
		return ExitUsage
	}
}

// Fail reports err on stderr — including the first divergent window when
// the failure is a replay divergence — and returns the exit code for it.
func Fail(tool string, err error) int {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	var de *drdebug.DivergenceError
	if errors.As(err, &de) {
		fmt.Fprintf(os.Stderr, "%s: first divergent window: %s\n", tool, de.Div.Window())
	}
	return ExitCode(err)
}

// Limits builds execution limits from the shared -budget / -deadline
// flag values (0 means unbounded).
func Limits(budget int64, deadline time.Duration) drdebug.Limits {
	return drdebug.Timeout(budget, deadline)
}

// LoadProgram resolves -file / -workload into a program. Exactly one must
// be set.
func LoadProgram(file, workload string) (*drdebug.Program, *drdebug.Workload, error) {
	switch {
	case file != "" && workload != "":
		return nil, nil, fmt.Errorf("use either -file or -workload, not both")
	case file != "":
		p, err := drdebug.CompileFile(file)
		return p, nil, err
	case workload != "":
		w, err := drdebug.WorkloadByName(workload)
		if err != nil {
			return nil, nil, err
		}
		p, err := w.Program()
		return p, w, err
	}
	return nil, nil, fmt.Errorf("need -file <src.c|src.s> or -workload <name>")
}

// ParseInput parses "1,2,3" into input words.
func ParseInput(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad input word %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// WorkloadNames returns the registered workload names for usage text.
func WorkloadNames() string {
	var names []string
	for _, w := range drdebug.Workloads() {
		names = append(names, w.Name)
	}
	return strings.Join(names, ", ")
}
