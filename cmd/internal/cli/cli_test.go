package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseInput(t *testing.T) {
	got, err := ParseInput("1, -2,3")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != -2 || got[2] != 3 {
		t.Fatalf("ParseInput = %v, %v", got, err)
	}
	if got, err := ParseInput(""); err != nil || got != nil {
		t.Errorf("empty input = %v, %v", got, err)
	}
	if _, err := ParseInput("1,x"); err == nil {
		t.Error("bad word accepted")
	}
}

func TestLoadProgram(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.c")
	if err := os.WriteFile(path, []byte("int main() { return 0; }"), 0o644); err != nil {
		t.Fatal(err)
	}
	if p, w, err := LoadProgram(path, ""); err != nil || p == nil || w != nil {
		t.Errorf("file load: %v %v %v", p, w, err)
	}
	if p, w, err := LoadProgram("", "dedup"); err != nil || p == nil || w == nil {
		t.Errorf("workload load: %v %v %v", p, w, err)
	}
	if _, _, err := LoadProgram(path, "dedup"); err == nil {
		t.Error("both sources accepted")
	}
	if _, _, err := LoadProgram("", ""); err == nil {
		t.Error("no source accepted")
	}
	if _, _, err := LoadProgram("", "nope"); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, _, err := LoadProgram(filepath.Join(dir, "missing.c"), ""); err == nil {
		t.Error("missing file accepted")
	}
}

func TestWorkloadNames(t *testing.T) {
	names := WorkloadNames()
	for _, want := range []string{"pbzip2", "blackscholes", "wupwise"} {
		if !strings.Contains(names, want) {
			t.Errorf("names missing %q: %s", want, names)
		}
	}
}
