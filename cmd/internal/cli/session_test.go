package cli

import (
	"testing"

	"repro/internal/sessiond"
)

// TestSessionExitCodeTable pins the full response→exit-code mapping:
// scripts branch on these numbers, so every typed daemon code — and
// every fleet annotation — must land on its documented exit status.
func TestSessionExitCodeTable(t *testing.T) {
	cases := []struct {
		name string
		resp sessiond.Response
		want int
	}{
		{"clean success", sessiond.Response{OK: true}, 0},
		{"salvaged", sessiond.Response{OK: true, Code: sessiond.CodeSalvaged}, ExitDegraded},
		{"degraded replay", sessiond.Response{OK: true, Code: sessiond.CodeDegraded}, ExitDegraded},
		{"fleet redispatched", sessiond.Response{OK: true, Code: sessiond.CodeRedispatched}, ExitFleetDegraded},
		{"store healed", sessiond.Response{OK: true, Code: sessiond.CodeHealed}, ExitFleetDegraded},
		{"estimated content", sessiond.Response{OK: true, Code: sessiond.CodeEstimated}, ExitEstimated},

		{"corrupt pinball", sessiond.Response{Code: sessiond.CodeCorrupt}, ExitBadPinball},
		{"divergence", sessiond.Response{Code: sessiond.CodeDivergence}, ExitDiverged},
		{"limit", sessiond.Response{Code: sessiond.CodeLimit}, ExitDiverged},
		{"panic", sessiond.Response{Code: sessiond.CodePanic}, ExitPanic},
		{"timeout", sessiond.Response{Code: sessiond.CodeTimeout}, ExitHung},

		{"overload", sessiond.Response{Code: sessiond.CodeOverload}, ExitUnavailable},
		{"draining", sessiond.Response{Code: sessiond.CodeDraining}, ExitUnavailable},
		{"circuit open", sessiond.Response{Code: sessiond.CodeCircuitOpen}, ExitUnavailable},
		{"no fleet workers", sessiond.Response{Code: sessiond.CodeNoWorkers}, ExitUnavailable},
		{"store unavailable", sessiond.Response{Code: sessiond.CodeStoreUnavailable}, ExitStoreUnavailable},

		{"bad request", sessiond.Response{Code: sessiond.CodeBadRequest}, ExitUsage},
		{"quota", sessiond.Response{Code: sessiond.CodeQuota}, ExitUsage},
		{"internal", sessiond.Response{Code: sessiond.CodeInternal}, ExitUsage},
	}
	for _, tc := range cases {
		if got := SessionExitCode(&tc.resp); got != tc.want {
			t.Errorf("%s: exit %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestExitCodesDistinct guards the documented numbering: each failure
// class keeps its own code, and the fleet-degraded code extends the
// table rather than colliding with an existing class.
func TestExitCodesDistinct(t *testing.T) {
	codes := []int{ExitUsage, ExitBadPinball, ExitDiverged, ExitDegraded,
		ExitPanic, ExitHung, ExitUnavailable, ExitFleetDegraded, ExitEstimated,
		ExitStoreUnavailable}
	seen := make(map[int]bool)
	for i, c := range codes {
		if c != i+1 {
			t.Errorf("exit code %d out of sequence: %d", i+1, c)
		}
		if seen[c] {
			t.Errorf("exit code %d duplicated", c)
		}
		seen[c] = true
	}
}
