package cli

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"repro/internal/sessiond"
)

// SessionClient talks the sessiond line-JSON protocol to a drserved
// instance: one request per line out, one response per line back, in
// order. It is not safe for concurrent use; open one client per
// goroutine (the daemon multiplexes across connections, not within
// one).
type SessionClient struct {
	conn net.Conn
	enc  *json.Encoder
	sc   *bufio.Scanner
}

// DialSession connects to a drserved instance.
func DialSession(addr string) (*SessionClient, error) {
	return DialSessionTimeout(addr, 5*time.Second)
}

// DialSessionTimeout is DialSession with a connect timeout.
func DialSessionTimeout(addr string, d time.Duration) (*SessionClient, error) {
	conn, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, fmt.Errorf("dial sessiond at %s: %w", addr, err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	return &SessionClient{conn: conn, enc: json.NewEncoder(conn), sc: sc}, nil
}

// Do sends one request and reads its response. A transport failure
// (broken connection, malformed response) is returned as an error;
// a server-side failure arrives as a response with OK false and a typed
// Code, which is not an error here — callers decide via SessionExitCode.
func (c *SessionClient) Do(req *sessiond.Request) (*sessiond.Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("send request: %w", err)
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return nil, fmt.Errorf("read response: %w", err)
		}
		return nil, fmt.Errorf("read response: connection closed by server")
	}
	var resp sessiond.Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return nil, fmt.Errorf("malformed response: %w", err)
	}
	return &resp, nil
}

// Close releases the connection.
func (c *SessionClient) Close() error { return c.conn.Close() }

// SessionExitCode maps a sessiond response onto the shared exit-code
// table, so `drserved -client` composes with the one-shot tools in
// scripts: the same failure class yields the same exit status whether
// the session ran in-process or in the daemon.
func SessionExitCode(resp *sessiond.Response) int {
	if resp.OK {
		if resp.Code == sessiond.CodeDegraded || resp.Code == sessiond.CodeSalvaged {
			return ExitDegraded
		}
		return 0
	}
	switch resp.Code {
	case sessiond.CodeCorrupt:
		return ExitBadPinball
	case sessiond.CodeDivergence, sessiond.CodeLimit:
		return ExitDiverged
	case sessiond.CodePanic:
		return ExitPanic
	case sessiond.CodeTimeout:
		return ExitHung
	case sessiond.CodeOverload, sessiond.CodeDraining, sessiond.CodeCircuitOpen:
		return ExitUnavailable
	}
	return ExitUsage
}
