package cli

import (
	"time"

	"repro/internal/sessiond"
)

// SessionClient talks the sessiond line-JSON protocol to a drserved
// instance. The implementation lives in internal/sessiond (the fleet's
// coordinator/worker links reuse it); this alias keeps the cmd-layer
// API where tools expect it.
type SessionClient = sessiond.Client

// DialSession connects to a drserved instance.
func DialSession(addr string) (*SessionClient, error) {
	return sessiond.Dial(addr)
}

// DialSessionTimeout is DialSession with a connect timeout.
func DialSessionTimeout(addr string, d time.Duration) (*SessionClient, error) {
	return sessiond.DialTimeout(addr, d)
}

// SessionExitCode maps a sessiond response onto the shared exit-code
// table, so `drserved -client` composes with the one-shot tools in
// scripts: the same failure class yields the same exit status whether
// the session ran in-process, in the daemon, or across the fleet.
func SessionExitCode(resp *sessiond.Response) int {
	if resp.OK {
		switch resp.Code {
		case sessiond.CodeEstimated:
			return ExitEstimated
		case sessiond.CodeDegraded, sessiond.CodeSalvaged:
			return ExitDegraded
		case sessiond.CodeRedispatched, sessiond.CodeHealed:
			// Right answer, limping infrastructure: the fleet re-dispatched
			// around a dead worker, or the store healed a damaged copy
			// before the session ran.
			return ExitFleetDegraded
		}
		return 0
	}
	switch resp.Code {
	case sessiond.CodeCorrupt:
		return ExitBadPinball
	case sessiond.CodeDivergence, sessiond.CodeLimit:
		return ExitDiverged
	case sessiond.CodePanic:
		return ExitPanic
	case sessiond.CodeTimeout:
		return ExitHung
	case sessiond.CodeOverload, sessiond.CodeDraining, sessiond.CodeCircuitOpen, sessiond.CodeNoWorkers:
		return ExitUnavailable
	case sessiond.CodeStoreUnavailable:
		return ExitStoreUnavailable
	}
	return ExitUsage
}
