package cli

import (
	"bufio"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestReadmeExitCodeTablePinned parses README's consolidated exit-code
// table and pins it to the cli constants: every documented code must
// exist, be sequential from 0, describe the right failure class, and
// the table must cover the whole constant range — so adding an exit
// code without documenting it (or vice versa) fails the build.
func TestReadmeExitCodeTablePinned(t *testing.T) {
	f, err := os.Open("../../../README.md")
	if err != nil {
		t.Fatalf("open README: %v", err)
	}
	defer f.Close()

	// Rows look like: | 4 | degraded | completed from a salvaged ... |
	row := regexp.MustCompile(`^\|\s*(\d+)\s*\|([^|]*)\|([^|]*)\|$`)
	docs := map[int]string{} // code -> class + meaning, lower-cased
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := row.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		code, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		if _, dup := docs[code]; dup {
			t.Errorf("README documents exit code %d twice", code)
		}
		docs[code] = strings.ToLower(m[2] + " " + m[3])
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	// One row per code, 0 through the table's last constant.
	if len(docs) != ExitStoreUnavailable+1 {
		t.Fatalf("README table has %d rows, want %d (codes 0-%d)",
			len(docs), ExitStoreUnavailable+1, ExitStoreUnavailable)
	}
	for code := 0; code <= ExitStoreUnavailable; code++ {
		if _, ok := docs[code]; !ok {
			t.Errorf("README table is missing exit code %d", code)
		}
	}

	// Each constant's row must describe its failure class: a keyword
	// check, so renumbering a constant without moving its docs fails.
	for _, tc := range []struct {
		code    int
		keyword string
	}{
		{ExitUsage, "usage"},
		{ExitBadPinball, "pinball"},
		{ExitDiverged, "diverged"},
		{ExitDegraded, "degraded"},
		{ExitPanic, "panic"},
		{ExitHung, "hung"},
		{ExitUnavailable, "refused"},
		{ExitFleetDegraded, "fleet"},
		{ExitEstimated, "estimated"},
		{ExitStoreUnavailable, "store"},
	} {
		if !strings.Contains(docs[tc.code], tc.keyword) {
			t.Errorf("README row for exit %d does not mention %q: %q", tc.code, tc.keyword, docs[tc.code])
		}
	}
}
