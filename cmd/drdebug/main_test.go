package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/cmd/internal/cli"
	"repro/internal/pinball"
	"repro/internal/pinplay"

	drdebug "repro"
)

const debugSrc = `
int counter;
int mtx;
int worker(int id) {
	int i;
	for (i = 0; i < 20; i++) {
		lock(&mtx);
		counter = counter + read();
		unlock(&mtx);
	}
	return 0;
}
int main() {
	int t = spawn(worker, 1);
	worker(0);
	join(t);
	write(counter);
	return 0;
}`

// TestExitCodes drives run() through the loadable-pinball failure
// classes the debugger distinguishes for scripts (gdb -x style).
func TestExitCodes(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "debug.c")
	if err := os.WriteFile(src, []byte(debugSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	prog, err := drdebug.CompileFile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	input := make([]int64, 64)
	for i := range input {
		input[i] = int64(i + 1)
	}
	cfg := pinplay.LogConfig{
		Seed: 5, MeanQuantum: 17, Input: input, CheckpointEvery: 8,
		JournalPath: filepath.Join(dir, "debug.journal"), JournalEvery: 64, JournalNoSync: true,
	}
	pb, err := pinplay.Log(prog, cfg, pinplay.RegionSpec{})
	if err != nil {
		t.Fatalf("log: %v", err)
	}
	intact := filepath.Join(dir, "intact.pinball")
	if err := pb.Save(intact); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(intact)
	if err != nil {
		t.Fatal(err)
	}
	halved := filepath.Join(dir, "halved.pinball")
	if err := os.WriteFile(halved, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// 40 bytes ends inside the meta frame: nothing critical survives.
	stub := filepath.Join(dir, "stub.pinball")
	if err := os.WriteFile(stub, data[:40], 0o644); err != nil {
		t.Fatal(err)
	}
	jdata, err := os.ReadFile(cfg.JournalPath)
	if err != nil {
		t.Fatal(err)
	}
	secs, err := pinball.SectionOffsets(jdata)
	if err != nil || len(secs) < 3 {
		t.Fatalf("journal sections: %d, %v", len(secs), err)
	}
	torn := filepath.Join(dir, "torn.journal")
	if err := os.WriteFile(torn, jdata[:secs[len(secs)-1].Off], 0o644); err != nil {
		t.Fatal(err)
	}
	script := filepath.Join(dir, "quit.drdebug")
	if err := os.WriteFile(script, []byte("quit\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name    string
		file    string
		pinball string
		salvage bool
		want    int
	}{
		{name: "intact", file: src, pinball: intact, want: 0},
		{name: "no-program", file: "", pinball: "", want: cli.ExitUsage},
		{name: "corrupt-rejected", file: src, pinball: halved, want: cli.ExitBadPinball},
		{name: "torn-journal-rejected", file: src, pinball: torn, want: cli.ExitBadPinball},
		{name: "corrupt-unsalvageable", file: src, pinball: stub, salvage: true, want: cli.ExitBadPinball},
		{name: "salvaged-framed-degraded", file: src, pinball: halved, salvage: true, want: cli.ExitDegraded},
		{name: "salvaged-journal-degraded", file: src, pinball: torn, salvage: true, want: cli.ExitDegraded},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.file, "", 1, 1000, "", tc.pinball, script, tc.salvage)
			if got := cli.ExitCode(err); got != tc.want {
				t.Fatalf("exit code = %d (err: %v), want %d", got, err, tc.want)
			}
		})
	}
}
