// Command drdebug is the interactive replay debugger: gdb-style commands
// plus DrDebug's region recording, dynamic slicing and execution-slice
// stepping, on mini-C/assembly programs or the built-in workloads.
//
// Usage:
//
//	drdebug -file bug.c [-seed 7] [-input 4,100]
//	drdebug -workload pbzip2 -input 3,40 -pinball bug.pinball
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	drdebug "repro"
	"repro/cmd/internal/cli"
)

func main() {
	var (
		file     = flag.String("file", "", "mini-C (.c) or assembly (.s) source file")
		workload = flag.String("workload", "", "built-in workload: "+cli.WorkloadNames())
		seed     = flag.Int64("seed", 1, "scheduling seed for native runs")
		quantum  = flag.Int64("quantum", 1000, "mean preemption quantum (instructions)")
		input    = flag.String("input", "", "program input words, comma separated")
		pinballP = flag.String("pinball", "", "open an existing pinball and start in replay mode")
		script   = flag.String("x", "", "execute debugger commands from this file, then exit")
	)
	flag.Parse()

	if err := run(*file, *workload, *seed, *quantum, *input, *pinballP, *script); err != nil {
		fmt.Fprintln(os.Stderr, "drdebug:", err)
		os.Exit(1)
	}
}

func run(file, workload string, seed, quantum int64, input, pinballPath, script string) error {
	prog, _, err := cli.LoadProgram(file, workload)
	if err != nil {
		return err
	}
	in, err := cli.ParseInput(input)
	if err != nil {
		return err
	}
	d := drdebug.NewDebugger(prog, drdebug.LogConfig{
		Seed: seed, MeanQuantum: quantum, Input: in, RandSeed: seed,
	})
	if pinballPath != "" {
		sess, err := drdebug.LoadSession(prog, pinballPath)
		if err != nil {
			return err
		}
		d.UseSession(sess)
		fmt.Printf("loaded pinball %s (%d instructions); starting in replay mode\n",
			pinballPath, sess.Pinball.RegionInstrs)
	}
	if script != "" {
		// Batch mode: run the command file, like gdb -x.
		data, err := os.ReadFile(script)
		if err != nil {
			return err
		}
		for _, cmd := range strings.Split(string(data), "\n") {
			cmd = strings.TrimSpace(cmd)
			if cmd == "" || strings.HasPrefix(cmd, "#") {
				continue
			}
			if cmd == "quit" || cmd == "q" {
				return nil
			}
			fmt.Printf("(drdebug) %s\n", cmd)
			if err := d.Execute(cmd, os.Stdout); err != nil {
				fmt.Printf("error: %v\n", err)
			}
		}
		return nil
	}
	fmt.Printf("DrDebug on %s — type help for commands\n", prog.Name)
	return d.Run(os.Stdin, os.Stdout)
}
