// Command drdebug is the interactive replay debugger: gdb-style commands
// plus DrDebug's region recording, dynamic slicing and execution-slice
// stepping, on mini-C/assembly programs or the built-in workloads.
//
// Usage:
//
//	drdebug -file bug.c [-seed 7] [-input 4,100]
//	drdebug -workload pbzip2 -input 3,40 -pinball bug.pinball [-salvage]
//
// Exit codes: 0 success, 1 usage/tool error, 2 the pinball file failed
// to load (or salvage), 3 a replay of the pinball failed, 4 the session
// ran but on a salvaged (partial) pinball, 9 the session ran but some of
// its flight-recorder content is estimated (a bridged window failed hash
// verification).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	drdebug "repro"
	"repro/cmd/internal/cli"
)

func main() {
	var (
		file     = flag.String("file", "", "mini-C (.c) or assembly (.s) source file")
		workload = flag.String("workload", "", "built-in workload: "+cli.WorkloadNames())
		seed     = flag.Int64("seed", 1, "scheduling seed for native runs")
		quantum  = flag.Int64("quantum", 1000, "mean preemption quantum (instructions)")
		input    = flag.String("input", "", "program input words, comma separated")
		pinballP = flag.String("pinball", "", "open an existing pinball and start in replay mode")
		script   = flag.String("x", "", "execute debugger commands from this file, then exit")
		salvage  = flag.Bool("salvage", false, "salvage a damaged pinball file instead of rejecting it")
	)
	flag.Parse()

	if err := run(*file, *workload, *seed, *quantum, *input, *pinballP, *script, *salvage); err != nil {
		os.Exit(cli.Fail("drdebug", err))
	}
}

func run(file, workload string, seed, quantum int64, input, pinballPath, script string, salvage bool) error {
	prog, _, err := cli.LoadProgram(file, workload)
	if err != nil {
		return err
	}
	in, err := cli.ParseInput(input)
	if err != nil {
		return err
	}
	d := drdebug.NewDebugger(prog, drdebug.LogConfig{
		Seed: seed, MeanQuantum: quantum, Input: in, RandSeed: seed,
	})
	salvaged := false
	var sess *drdebug.Session
	if pinballPath != "" {
		if salvage {
			var rep *drdebug.SalvageReport
			sess, rep, err = drdebug.LoadSessionSalvage(prog, pinballPath)
			if err != nil {
				return err
			}
			if rep != nil {
				salvaged = true
				fmt.Fprintf(os.Stderr, "drdebug: pinball was damaged; salvaged %d of %d instructions\n",
					rep.SalvagedInstrs, rep.OriginalInstrs)
			}
		} else if sess, err = drdebug.LoadSession(prog, pinballPath); err != nil {
			return err
		}
		d.UseSession(sess)
		fmt.Printf("loaded pinball %s (%d instructions); starting in replay mode\n",
			pinballPath, sess.Pinball.RegionInstrs)
		if sess.Pinball.Gapped() {
			fmt.Printf("flight-recorder pinball: %d evicted windows (%d instructions) will be bridged on first replay\n",
				len(sess.Pinball.Evictions), sess.Pinball.GapInstrs())
		}
	}
	if script != "" {
		// Batch mode: run the command file, like gdb -x.
		data, err := os.ReadFile(script)
		if err != nil {
			return err
		}
		for _, cmd := range strings.Split(string(data), "\n") {
			cmd = strings.TrimSpace(cmd)
			if cmd == "" || strings.HasPrefix(cmd, "#") {
				continue
			}
			if cmd == "quit" || cmd == "q" {
				return degradedOK(sess, salvaged)
			}
			fmt.Printf("(drdebug) %s\n", cmd)
			if err := d.Execute(cmd, os.Stdout); err != nil {
				fmt.Printf("error: %v\n", err)
			}
		}
		return degradedOK(sess, salvaged)
	}
	fmt.Printf("DrDebug on %s — type help for commands\n", prog.Name)
	if err := d.Run(os.Stdin, os.Stdout); err != nil {
		return err
	}
	return degradedOK(sess, salvaged)
}

// degradedOK turns a successful run on a salvaged pinball into the
// degraded-mode exit (code 4), and a session that bridged flight-recorder
// gaps with hash-unverified content into the estimated exit (code 9), so
// scripts can tell partial results apart.
func degradedOK(sess *drdebug.Session, salvaged bool) error {
	if sess != nil {
		if gr := sess.GapReport(); gr.Degraded() {
			return fmt.Errorf("session carries estimated flight-recorder content: %w", cli.ErrEstimated)
		}
	}
	if salvaged {
		return fmt.Errorf("session ran on a salvaged pinball: %w", cli.ErrDegraded)
	}
	return nil
}
