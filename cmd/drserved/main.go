// Command drserved is the DrDebug session daemon: a resident service
// that runs record / replay / slice / dual-slice sessions over a
// line-delimited JSON TCP protocol, so the cyclic-debugging loop —
// record once, replay and slice many times — reuses hot slicing engines
// across requests instead of rebuilding them per CLI invocation.
//
// Server mode:
//
//	drserved -addr 127.0.0.1:7711 [-max-sessions 4] [-max-queue 16] ...
//
// The daemon admits a bounded number of concurrent sessions (excess
// requests queue FIFO up to -max-queue, then shed with a typed
// "overload" error), clamps every session's instruction budget,
// wall-clock deadline and page cap between server defaults and maxima,
// opens a per-pinball circuit breaker after -breaker-k consecutive
// failures on the same pinball content, and drains gracefully on
// SIGINT/SIGTERM: in-flight sessions finish within -drain-timeout, then
// stragglers are cancelled.
//
// Fleet mode splits the daemon into a coordinator fronting workers:
//
//	drserved -coordinator -addr 127.0.0.1:7700
//	drserved -addr 127.0.0.1:7711 -join 127.0.0.1:7700 -worker-name w1
//	drserved -addr 127.0.0.1:7712 -join 127.0.0.1:7700 -worker-name w2
//
// The coordinator speaks the same protocol a single daemon does, so
// clients point at it unchanged: it routes sessions to workers by
// pinball content (cache-hot), distributes slice queries as hedged
// shard chains, detects dead workers by missed heartbeats and
// re-dispatches their in-flight work, and sheds load fleet-wide.
//
// Client mode ("drsession"):
//
//	drserved -client 127.0.0.1:7711 -op replay -workload fft -pinball f.pinball
//	drserved -client 127.0.0.1:7711 -op slice -workload fft -pinball f.pinball -var sum
//	drserved -client 127.0.0.1:7711 -op health
//
// prints the response JSON on stdout and exits with the shared tool
// exit codes (cmd/internal/cli), plus 7 when the daemon refuses the
// request (overloaded, draining, no live worker, or the pinball's
// circuit is open) and 8 when the fleet answered correctly but only by
// re-dispatching away from a dead or straggling worker.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/cmd/internal/cli"
	"repro/internal/faultinject"
	"repro/internal/fleet"
	"repro/internal/sessiond"
	"repro/internal/store"
	"repro/internal/supervisor"
	"repro/internal/vm"
)

func main() {
	var (
		clientAddr = flag.String("client", "", "run as client against a daemon at this address")
		addr       = flag.String("addr", "127.0.0.1:7711", "server listen address")

		maxSessions  = flag.Int("max-sessions", 4, "concurrent session limit")
		maxQueue     = flag.Int("max-queue", 16, "FIFO wait queue length behind the pool")
		maxPerClient = flag.Int("max-per-client", 0, "per-client running+queued cap (0 = max-sessions)")

		defBudget   = flag.Int64("default-budget", 0, "default instruction budget (0 = server default)")
		maxBudget   = flag.Int64("max-budget", 0, "maximum instruction budget a request may ask for")
		defDeadline = flag.Duration("default-deadline", 0, "default per-session wall-clock deadline")
		maxDeadline = flag.Duration("max-deadline", 0, "maximum per-session wall-clock deadline")
		defPages    = flag.Int("default-pages", 0, "default per-session memory cap in VM pages")
		maxPages    = flag.Int("max-pages", 0, "maximum per-session memory cap in VM pages")

		breakerK        = flag.Int("breaker-k", 3, "consecutive failures that open a pinball's circuit")
		breakerCooldown = flag.Duration("breaker-cooldown", 30*time.Second, "how long an open circuit rejects before a trial")

		retries = flag.Int("retries", 3, "attempts per session for transient failures")
		backoff = flag.Duration("backoff", 10*time.Millisecond, "initial retry backoff (doubles per retry)")
		jitter  = flag.Float64("jitter", 0.2, "retry backoff jitter fraction in [0,1]")

		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown window for in-flight sessions")
		engineCache  = flag.Int("engine-cache", 0, "slice-engine LRU capacity (0 = default)")
		graphCache   = flag.Int("graph-cache", 0, "CFG LRU capacity (0 = default)")

		// Fleet modes.
		coordMode  = flag.Bool("coordinator", false, "run as fleet coordinator instead of a session daemon")
		join       = flag.String("join", "", "worker mode: register with the coordinator at this address")
		workerName = flag.String("worker-name", "", "fleet worker name (default: the listen address)")
		advertise  = flag.String("advertise", "", "address the coordinator should dial back (default: the listen address)")

		// Coordinator tuning.
		heartbeatEvery = flag.Duration("heartbeat-interval", 500*time.Millisecond, "coordinator: heartbeat cadence workers are told")
		heartbeatMiss  = flag.Int("heartbeat-miss", 4, "coordinator: missed beats before a worker is declared dead")
		hedgeAfter     = flag.Duration("hedge-after", time.Second, "coordinator: straggler deadline before a shard hop is hedged")
		shardWindows   = flag.Int("shard-windows", 4, "coordinator: checkpoint windows per distributed slice hop")

		// Content-addressed store.
		storeRoot = flag.String("store", "", "content-addressed pinball store root (enables digest-named sessions and store ops)")

		// Worker chaos (soak testing): stall every Nth session mid-replay.
		chaosStallEvery = flag.Int64("chaos-stall-every", 0, "inject a stall into every Nth session (0 = never; testing only)")
		chaosStallFor   = flag.Duration("chaos-stall-for", 30*time.Second, "how long an injected stall blocks")

		// Client-mode request fields.
		op       = flag.String("op", "health", "client op: record, replay, slice, dualslice, health, stats")
		file     = flag.String("file", "", "server-local mini-C (.c) or assembly (.s) source file")
		workload = flag.String("workload", "", "built-in workload: "+cli.WorkloadNames())
		pinballP = flag.String("pinball", "", "server-local pinball path (failing run for dualslice)")
		digest   = flag.String("digest", "", "pinball content digest (resolved via the daemon's store instead of a path)")
		passing  = flag.String("passing-pinball", "", "server-local passing-run pinball (dualslice)")
		salvage  = flag.Bool("salvage", false, "permit salvaging a damaged pinball")
		varName  = flag.String("var", "", "slice criterion / dualslice variable")
		tid      = flag.Int("tid", 0, "slice criterion thread")
		line     = flag.Int("line", 0, "slice criterion source line")
		nth      = flag.Int("nth", 1, "slice criterion line instance")
		workers  = flag.Int("workers", 0, "parallel slicing workers (0 = sequential)")
		out      = flag.String("out", "", "record: where the daemon writes the pinball")
		input    = flag.String("input", "", "record: program input words, comma separated")
		seed     = flag.Int64("seed", 1, "record: scheduling seed")
		budget   = flag.Int64("budget", 0, "requested instruction budget (0 = server default)")
		deadline = flag.Duration("deadline", 0, "requested wall-clock deadline (0 = server default)")
		pages    = flag.Int("pages", 0, "requested memory cap in pages (0 = server default)")
		clientID = flag.String("client-id", "", "client identity for per-client caps (default: remote address)")
	)
	flag.Parse()

	if *clientAddr != "" {
		os.Exit(runClient(*clientAddr, &sessiond.Request{
			Op:             *op,
			Client:         *clientID,
			File:           *file,
			Workload:       *workload,
			Pinball:        *pinballP,
			Digest:         *digest,
			PassingPinball: *passing,
			Salvage:        *salvage,
			Var:            *varName,
			Tid:            *tid,
			Line:           *line,
			Nth:            *nth,
			Workers:        *workers,
			Out:            *out,
			Seed:           *seed,
			Budget:         *budget,
			DeadlineMS:     deadline.Milliseconds(),
			MaxPages:       *pages,
		}, *input))
	}

	if *coordMode {
		runCoordinator(*addr, fleet.Config{
			HeartbeatInterval: *heartbeatEvery,
			HeartbeatMiss:     *heartbeatMiss,
			MaxAttempts:       *retries,
			RetryBase:         *backoff,
			HedgeAfter:        *hedgeAfter,
			ShardWindows:      *shardWindows,
			DrainTimeout:      *drainTimeout,
			Logf:              log.Printf,
		}, *drainTimeout)
		return
	}

	var chaos func(op string) vm.Tracer
	if *chaosStallEvery > 0 {
		sc := &faultinject.SessionChaos{StallEveryN: *chaosStallEvery, StallFor: *chaosStallFor}
		chaos = sc.Tracer
		log.Printf("drserved: CHAOS enabled: stalling every %d sessions for %v", *chaosStallEvery, *chaosStallFor)
	}

	var st *store.Store
	var locator *fleet.CoordinatorLocator
	if *storeRoot != "" {
		var err error
		if st, err = store.Open(*storeRoot); err != nil {
			log.Fatalf("drserved: %v", err)
		}
		log.Printf("drserved: content store at %s", *storeRoot)
		if *join != "" {
			// Heal damaged digests from fleet peers; the locator learns our
			// own advertised address after the listener binds.
			locator = &fleet.CoordinatorLocator{Coordinator: *join}
		}
	}

	var loc sessiond.Locator
	if locator != nil {
		loc = locator
	}
	srv := sessiond.New(sessiond.Config{
		Store:   st,
		Locator: loc,
		Admission: sessiond.AdmissionConfig{
			MaxSessions:  *maxSessions,
			MaxQueue:     *maxQueue,
			MaxPerClient: *maxPerClient,
		},
		Quota: sessiond.QuotaConfig{
			DefaultBudget:   *defBudget,
			MaxBudget:       *maxBudget,
			DefaultDeadline: *defDeadline,
			MaxDeadline:     *maxDeadline,
			DefaultPages:    *defPages,
			MaxPages:        *maxPages,
		},
		Breaker: sessiond.BreakerConfig{K: *breakerK, Cooldown: *breakerCooldown},
		Supervisor: supervisor.Options{
			MaxAttempts: *retries,
			Backoff:     *backoff,
			Jitter:      *jitter,
		},
		DrainTimeout:   *drainTimeout,
		EngineCacheCap: *engineCache,
		GraphCacheCap:  *graphCache,
		Logf:           log.Printf,
		Chaos:          chaos,
	})

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("drserved: %v", err)
	}
	log.Printf("drserved: listening on %s", lis.Addr())

	if *join != "" {
		name := *workerName
		if name == "" {
			name = lis.Addr().String()
		}
		dialBack := *advertise
		if dialBack == "" {
			dialBack = lis.Addr().String()
		}
		if locator != nil {
			locator.SetSelf(dialBack)
		}
		agentCtx, agentCancel := context.WithCancel(context.Background())
		defer agentCancel()
		agent := fleet.NewAgent(srv, fleet.AgentConfig{
			Coordinator: *join,
			Name:        name,
			Addr:        dialBack,
			Capacity:    *maxSessions,
			Logf:        log.Printf,
		})
		go func() {
			if err := agent.Run(agentCtx); err != nil && agentCtx.Err() == nil {
				log.Printf("drserved: fleet agent: %v", err)
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()

	select {
	case sig := <-sigc:
		log.Printf("drserved: %v, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout+5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Fatalf("drserved: shutdown: %v", err)
		}
		log.Printf("drserved: stopped")
	case err := <-done:
		if err != nil {
			log.Fatalf("drserved: %v", err)
		}
	}
}

// runCoordinator serves the fleet coordinator until a signal drains it.
func runCoordinator(addr string, cfg fleet.Config, drain time.Duration) {
	co := fleet.NewCoordinator(cfg)
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("drserved: %v", err)
	}
	log.Printf("drserved: coordinator listening on %s", lis.Addr())
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- co.Serve(lis) }()
	select {
	case sig := <-sigc:
		log.Printf("drserved: coordinator %v, draining", sig)
		if err := co.Shutdown(drain); err != nil {
			log.Fatalf("drserved: coordinator shutdown: %v", err)
		}
		log.Printf("drserved: coordinator stopped")
	case err := <-done:
		if err != nil {
			log.Fatalf("drserved: %v", err)
		}
	}
}

// runClient performs one request against a daemon and returns the
// process exit code.
func runClient(addr string, req *sessiond.Request, input string) int {
	words, err := cli.ParseInput(input)
	if err != nil {
		return cli.Fail("drserved", err)
	}
	req.Input = words
	c, err := cli.DialSession(addr)
	if err != nil {
		return cli.Fail("drserved", err)
	}
	defer c.Close()
	resp, err := c.Do(req)
	if err != nil {
		return cli.Fail("drserved", err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil {
		return cli.Fail("drserved", err)
	}
	if !resp.OK {
		fmt.Fprintf(os.Stderr, "drserved: %s: %s\n", resp.Code, resp.Error)
	}
	return cli.SessionExitCode(resp)
}
