// Command drreplay is the PinPlay-style replayer: it deterministically
// re-executes a pinball and reports the end state, validating the
// recorded divergence checkpoints along the way.
//
// Usage:
//
//	drreplay -file bug.c -pinball bug.pinball [-check] [-budget N]
//	         [-deadline 2s] [-degraded] [-no-verify] [-salvage]
//	         [-retries N] [-watchdog 30s] [-report out.json]
//
// The replay runs under the self-healing supervisor: panics are
// isolated, -retries enables retry-with-backoff, -watchdog bounds a hung
// replay, and a replay that keeps diverging is recovered at its last
// good divergence checkpoint. -salvage additionally repairs a damaged
// pinball file before replaying it.
//
// Exit codes: 0 success, 1 usage/tool error, 2 the pinball file failed
// to load (or salvage), 3 the pinball loaded but its replay failed (the
// first divergent window is printed to stderr; for a flight-recorder
// pinball this includes a bridged window failing hash verification), 4
// the replay completed only in degraded mode (salvaged pinball or
// checkpoint-anchored recovery), 5 the replay panicked, 6 the watchdog
// fired, 9 the replay completed but carried estimated flight-recorder
// content (-degraded let a hash-unverified bridge through).
//
// Flight-recorder pinballs (recorded with drrecord -ring-bytes/-sample)
// replay through gap bridging: evicted windows are re-derived by
// re-execution and verified against their retained hashes. The bridge
// summary is printed after the replay.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	drdebug "repro"
	"repro/cmd/internal/cli"
)

func main() {
	var (
		file     = flag.String("file", "", "mini-C (.c) or assembly (.s) source file")
		workload = flag.String("workload", "", "built-in workload: "+cli.WorkloadNames())
		pinballP = flag.String("pinball", "", "pinball to replay (required)")
		check    = flag.Bool("check", false, "replay twice and verify identical end states")
		stats    = flag.Bool("stats", false, "print pinball composition before replaying")
		budget   = flag.Int64("budget", 0, "instruction budget for the replay (0 = unbounded)")
		deadline = flag.Duration("deadline", 0, "wall-clock limit for the replay (0 = unbounded)")
		degraded = flag.Bool("degraded", false, "log checkpoint divergences and continue instead of aborting")
		noVerify = flag.Bool("no-verify", false, "skip divergence-checkpoint validation")
		salvage  = flag.Bool("salvage", false, "salvage a damaged pinball file instead of rejecting it")
		retries  = flag.Int("retries", 1, "attempts per supervised phase (1 = no retry)")
		watchdog = flag.Duration("watchdog", 0, "abort a hung replay after this long (0 = no watchdog)")
		report   = flag.String("report", "", "write the supervisor's JSON report to this file")
	)
	flag.Parse()

	opts := drdebug.ReplayOptions{
		Degraded: *degraded,
		NoVerify: *noVerify,
		// In degraded mode a bridged window that fails hash verification
		// becomes estimated content (exit 9) instead of aborting the replay.
		BridgeEstimates: *degraded,
		Limits:          cli.Limits(*budget, *deadline),
	}
	sup := drdebug.SupervisorOptions{MaxAttempts: *retries, Watchdog: *watchdog}
	if err := run(*file, *workload, *pinballP, *check, *stats, *salvage, *report, sup, opts); err != nil {
		os.Exit(cli.Fail("drreplay", err))
	}
}

func run(file, workload, pinballPath string, check, stats bool, salvage bool, reportPath string,
	sup drdebug.SupervisorOptions, opts drdebug.ReplayOptions) error {
	prog, _, err := cli.LoadProgram(file, workload)
	if err != nil {
		return err
	}
	if pinballPath == "" {
		return fmt.Errorf("need -pinball")
	}
	pb, salvaged, err := cli.LoadPinballMaybeSalvage("drreplay", pinballPath, salvage)
	if err != nil {
		return err
	}
	if stats {
		printStats(pb)
	}
	opts.OnDivergence = func(d drdebug.Divergence) {
		fmt.Fprintf(os.Stderr, "drreplay: divergence: %s\n", d)
	}
	sup.OnRetry = func(attempt int, err error) {
		fmt.Fprintf(os.Stderr, "drreplay: attempt %d failed (%v), retrying\n", attempt, err)
	}
	start := time.Now()
	res, err := drdebug.SupervisedReplay(prog, pb, sup, opts)
	if res != nil && res.Report != nil {
		if werr := writeReport(reportPath, res.Report); werr != nil {
			fmt.Fprintf(os.Stderr, "drreplay: %v\n", werr)
		}
	}
	if err != nil {
		return err
	}
	m, rep := res.Machine, res.Replay
	executed := pb.RegionInstrs
	if res.Degraded {
		executed = res.RecoveredStep
		fmt.Fprintf(os.Stderr, "drreplay: replay diverged; recovered at last good checkpoint (step %d of %d)\n",
			res.RecoveredStep, pb.RegionInstrs)
	}
	stop := m.Stopped().String()
	if stop == "running" {
		stop = "end of region"
	}
	fmt.Printf("replayed %d instructions in %.3fs (stop: %s)\n",
		executed, time.Since(start).Seconds(), stop)
	switch {
	case rep.Checked > 0 && len(rep.Divergences) == 0:
		fmt.Printf("verified %d divergence checkpoints\n", rep.Checked)
	case len(rep.Divergences) > 0:
		fmt.Printf("checked %d divergence checkpoints: %d divergent windows (degraded mode)\n",
			rep.Checked, len(rep.Divergences))
	}
	if br := rep.Bridge; br != nil {
		fmt.Printf("bridged %d evicted windows (%d instructions re-derived): %d exact, %d estimated\n",
			br.Windows, br.GapInstrs, br.Exact, len(br.Estimated))
		for _, ev := range br.Estimated {
			fmt.Fprintf(os.Stderr, "drreplay: window %d (steps %d..%d) failed hash verification; content is estimated\n",
				ev.ID, ev.FromStep, ev.ToStep)
		}
	}
	if f := m.Failure(); f != nil {
		fmt.Printf("reproduced failure: %v\n", f)
	}
	if out := m.Output(); len(out) > 0 {
		fmt.Printf("program output: %v\n", out)
	}
	if check && !res.Degraded && !rep.Bridge.Degraded() { // must come after the replay above so both share the load cost
		m2, err := drdebug.Replay(prog, pb)
		if err != nil {
			return err
		}
		if !m.Snapshot().Mem.Equal(m2.Snapshot().Mem) {
			return fmt.Errorf("replays reached different states — determinism violated")
		}
		fmt.Println("determinism check passed: two replays reached identical memory")
	}
	if rep.Bridge.Degraded() {
		return fmt.Errorf("replay finished, but %w", cli.ErrEstimated)
	}
	if salvaged || res.Degraded {
		return fmt.Errorf("replay finished, but %w", cli.ErrDegraded)
	}
	return nil
}

// writeReport writes the supervisor report as JSON ("-" = stderr).
func writeReport(path string, rep *drdebug.SupervisorReport) error {
	if path == "" {
		return nil
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stderr.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// printStats summarises what the pinball contains.
func printStats(pb *drdebug.Pinball) {
	sz, _ := pb.EncodedSize()
	fmt.Printf("pinball stats:\n")
	fmt.Printf("  program:        %s (%s)\n", pb.ProgramName, pb.Kind)
	fmt.Printf("  region:         %d instructions (%d main thread, skip %d), end=%s\n",
		pb.RegionInstrs, pb.MainInstrs, pb.SkipMain, pb.EndReason)
	fmt.Printf("  threads:        %d at region entry\n", len(pb.State.Threads))
	fmt.Printf("  memory pages:   %d captured\n", len(pb.State.Mem))
	fmt.Printf("  schedule:       %d quanta (avg %.1f instructions)\n",
		len(pb.Quanta), avgQuantum(pb))
	fmt.Printf("  syscalls:       %d logged\n", len(pb.Syscalls))
	fmt.Printf("  order edges:    %d shared-memory constraints\n", len(pb.OrderEdges))
	if pb.Gapped() || pb.RingBytes > 0 {
		fmt.Printf("  flight record:  %d evicted windows (%d instructions to bridge), budget %d bytes\n",
			len(pb.Evictions), pb.GapInstrs(), pb.RingBytes)
	}
	if pb.CheckpointEvery > 0 {
		fmt.Printf("  checkpoints:    %d (every %d per-thread instructions)\n",
			len(pb.Checkpoints), pb.CheckpointEvery)
	}
	if pb.Kind == "slice" {
		fmt.Printf("  exclusions:     %d regions, %d injections\n", len(pb.Exclusions), len(pb.Injections))
	}
	if pb.Failure != nil {
		fmt.Printf("  failure:        %v\n", pb.Failure)
	}
	fmt.Printf("  compressed:     %d bytes\n", sz)
}

func avgQuantum(pb *drdebug.Pinball) float64 {
	if len(pb.Quanta) == 0 {
		return 0
	}
	return float64(pb.TotalQuantumInstrs()) / float64(len(pb.Quanta))
}
