// Command drreplay is the PinPlay-style replayer: it deterministically
// re-executes a pinball and reports the end state, verifying the
// repeatability guarantee on request.
//
// Usage:
//
//	drreplay -file bug.c -pinball bug.pinball [-check]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	drdebug "repro"
	"repro/cmd/internal/cli"
)

func main() {
	var (
		file     = flag.String("file", "", "mini-C (.c) or assembly (.s) source file")
		workload = flag.String("workload", "", "built-in workload: "+cli.WorkloadNames())
		pinballP = flag.String("pinball", "", "pinball to replay (required)")
		check    = flag.Bool("check", false, "replay twice and verify identical end states")
		stats    = flag.Bool("stats", false, "print pinball composition before replaying")
	)
	flag.Parse()

	if err := run(*file, *workload, *pinballP, *check, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "drreplay:", err)
		os.Exit(1)
	}
}

func run(file, workload, pinballPath string, check, stats bool) error {
	prog, _, err := cli.LoadProgram(file, workload)
	if err != nil {
		return err
	}
	if pinballPath == "" {
		return fmt.Errorf("need -pinball")
	}
	pb, err := drdebug.LoadPinball(pinballPath)
	if err != nil {
		return err
	}
	if stats {
		printStats(pb)
	}
	start := time.Now()
	m, err := drdebug.Replay(prog, pb)
	if err != nil {
		return err
	}
	stop := m.Stopped().String()
	if stop == "running" {
		stop = "end of region"
	}
	fmt.Printf("replayed %d instructions in %.3fs (stop: %s)\n",
		pb.RegionInstrs, time.Since(start).Seconds(), stop)
	if f := m.Failure(); f != nil {
		fmt.Printf("reproduced failure: %v\n", f)
	}
	if out := m.Output(); len(out) > 0 {
		fmt.Printf("program output: %v\n", out)
	}
	if check { // must come after the replay above so both share the load cost
		m2, err := drdebug.Replay(prog, pb)
		if err != nil {
			return err
		}
		if !m.Snapshot().Mem.Equal(m2.Snapshot().Mem) {
			return fmt.Errorf("replays reached different states — determinism violated")
		}
		fmt.Println("determinism check passed: two replays reached identical memory")
	}
	return nil
}

// printStats summarises what the pinball contains.
func printStats(pb *drdebug.Pinball) {
	sz, _ := pb.EncodedSize()
	fmt.Printf("pinball stats:\n")
	fmt.Printf("  program:        %s (%s)\n", pb.ProgramName, pb.Kind)
	fmt.Printf("  region:         %d instructions (%d main thread, skip %d), end=%s\n",
		pb.RegionInstrs, pb.MainInstrs, pb.SkipMain, pb.EndReason)
	fmt.Printf("  threads:        %d at region entry\n", len(pb.State.Threads))
	fmt.Printf("  memory pages:   %d captured\n", len(pb.State.Mem))
	fmt.Printf("  schedule:       %d quanta (avg %.1f instructions)\n",
		len(pb.Quanta), avgQuantum(pb))
	fmt.Printf("  syscalls:       %d logged\n", len(pb.Syscalls))
	fmt.Printf("  order edges:    %d shared-memory constraints\n", len(pb.OrderEdges))
	if pb.Kind == "slice" {
		fmt.Printf("  exclusions:     %d regions, %d injections\n", len(pb.Exclusions), len(pb.Injections))
	}
	if pb.Failure != nil {
		fmt.Printf("  failure:        %v\n", pb.Failure)
	}
	fmt.Printf("  compressed:     %d bytes\n", sz)
}

func avgQuantum(pb *drdebug.Pinball) float64 {
	if len(pb.Quanta) == 0 {
		return 0
	}
	return float64(pb.TotalQuantumInstrs()) / float64(len(pb.Quanta))
}
