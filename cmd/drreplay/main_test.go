package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	drdebug "repro"
	"repro/cmd/internal/cli"
	"repro/internal/pinball"
	"repro/internal/pinplay"
)

// exitSrc is the recorded workload for the exit-code matrix: two threads
// on a lock-guarded counter with read() input, so the recording carries
// syscalls, order constraints and divergence checkpoints.
const exitSrc = `
int counter;
int mtx;
int worker(int id) {
	int i;
	for (i = 0; i < 20; i++) {
		lock(&mtx);
		counter = counter + read();
		unlock(&mtx);
	}
	return 0;
}
int main() {
	int t = spawn(worker, 1);
	worker(0);
	join(t);
	write(counter);
	return 0;
}`

func exitConfig() pinplay.LogConfig {
	input := make([]int64, 64)
	for i := range input {
		input[i] = int64(i + 1)
	}
	return pinplay.LogConfig{Seed: 5, MeanQuantum: 17, Input: input, CheckpointEvery: 8}
}

// fixture compiles the workload, records it, and lays out the pinball
// variants the exit-code table loads: intact, truncated, tampered (first
// and middle checkpoint), and an uncommitted recording journal.
type fixture struct {
	src     string
	intact  string
	halved  string
	div0    string
	divMid  string
	journal string
	ring    string
	ringBad string
}

func makeFixture(t *testing.T) *fixture {
	t.Helper()
	dir := t.TempDir()
	f := &fixture{src: filepath.Join(dir, "exit.c")}
	if err := os.WriteFile(f.src, []byte(exitSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	prog, err := drdebug.CompileFile(f.src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cfg := exitConfig()
	cfg.JournalPath = filepath.Join(dir, "exit.journal")
	cfg.JournalEvery = 64
	cfg.JournalNoSync = true
	pb, err := pinplay.Log(prog, cfg, pinplay.RegionSpec{})
	if err != nil {
		t.Fatalf("log: %v", err)
	}
	if len(pb.Checkpoints) < 4 {
		t.Fatalf("recording has only %d checkpoints", len(pb.Checkpoints))
	}

	f.intact = filepath.Join(dir, "intact.pinball")
	if err := pb.Save(f.intact); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(f.intact)
	if err != nil {
		t.Fatal(err)
	}
	f.halved = filepath.Join(dir, "halved.pinball")
	if err := os.WriteFile(f.halved, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	tamper := func(path string, idx int) {
		bad, err := pinball.Load(f.intact)
		if err != nil {
			t.Fatal(err)
		}
		bad.Checkpoints[idx].Hash ^= 0xBAD
		if err := bad.Save(path); err != nil {
			t.Fatal(err)
		}
	}
	f.div0 = filepath.Join(dir, "div0.pinball")
	tamper(f.div0, 0)
	f.divMid = filepath.Join(dir, "divmid.pinball")
	tamper(f.divMid, len(pb.Checkpoints)/2)

	// Cut the commit frame off the recording journal: a crash mid-record.
	jdata, err := os.ReadFile(cfg.JournalPath)
	if err != nil {
		t.Fatal(err)
	}
	secs, err := pinball.SectionOffsets(jdata)
	if err != nil || len(secs) < 3 {
		t.Fatalf("journal sections: %d, %v", len(secs), err)
	}
	f.journal = filepath.Join(dir, "torn.journal")
	if err := os.WriteFile(f.journal, jdata[:secs[len(secs)-1].Off], 0o644); err != nil {
		t.Fatal(err)
	}

	// Flight-recorder variants: the same workload under a ring budget
	// tight enough to evict windows, intact and with one retained window
	// hash flipped (bridge verification must fail for that window).
	rcfg := exitConfig()
	rcfg.RingBytes = 400
	rcfg.JournalEvery = 64
	rpb, err := pinplay.Log(prog, rcfg, pinplay.RegionSpec{})
	if err != nil {
		t.Fatalf("ring log: %v", err)
	}
	if !rpb.Gapped() {
		t.Fatalf("ring budget evicted nothing (region %d instructions)", rpb.RegionInstrs)
	}
	f.ring = filepath.Join(dir, "ring.pinball")
	if err := rpb.Save(f.ring); err != nil {
		t.Fatal(err)
	}
	rpb.Evictions[len(rpb.Evictions)/2].Hash ^= 1
	f.ringBad = filepath.Join(dir, "ringbad.pinball")
	if err := rpb.Save(f.ringBad); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestExitCodes drives run() through every failure class a script can
// see and pins the exit code each maps to.
func TestExitCodes(t *testing.T) {
	f := makeFixture(t)
	one := drdebug.SupervisorOptions{MaxAttempts: 1}
	for _, tc := range []struct {
		name    string
		pinball string
		salvage bool
		sup     drdebug.SupervisorOptions
		opts    drdebug.ReplayOptions
		want    int
	}{
		{name: "intact", pinball: f.intact, sup: one, want: 0},
		{name: "missing-pinball-flag", pinball: "", sup: one, want: cli.ExitUsage},
		{name: "corrupt-rejected", pinball: f.halved, sup: one, want: cli.ExitBadPinball},
		{name: "torn-journal-rejected", pinball: f.journal, sup: one, want: cli.ExitBadPinball},
		{name: "divergence-unrecoverable", pinball: f.div0, sup: one, want: cli.ExitDiverged},
		{name: "budget-exhausted", pinball: f.intact, sup: one,
			opts: drdebug.ReplayOptions{Limits: drdebug.Timeout(50, 0)}, want: cli.ExitDiverged},
		{name: "divergence-degraded-recovery", pinball: f.divMid,
			sup: drdebug.SupervisorOptions{MaxAttempts: 2}, want: cli.ExitDegraded},
		{name: "salvaged-journal-degraded", pinball: f.journal, salvage: true, sup: one, want: cli.ExitDegraded},
		{name: "ring-exact-bridge-clean", pinball: f.ring, sup: one, want: 0},
		{name: "ring-bad-hash-strict", pinball: f.ringBad, sup: one, want: cli.ExitDiverged},
		{name: "ring-bad-hash-estimated", pinball: f.ringBad, sup: one,
			opts: drdebug.ReplayOptions{Degraded: true, BridgeEstimates: true}, want: cli.ExitEstimated},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := run(f.src, "", tc.pinball, false, false, tc.salvage, "", tc.sup, tc.opts)
			if got := cli.ExitCode(err); got != tc.want {
				t.Fatalf("exit code = %d (err: %v), want %d", got, err, tc.want)
			}
		})
	}
}

// TestReportWritten checks -report emits the supervisor's JSON document.
func TestReportWritten(t *testing.T) {
	f := makeFixture(t)
	reportPath := filepath.Join(t.TempDir(), "report.json")
	err := run(f.src, "", f.divMid, false, false, false, reportPath,
		drdebug.SupervisorOptions{MaxAttempts: 2}, drdebug.ReplayOptions{})
	if got := cli.ExitCode(err); got != cli.ExitDegraded {
		t.Fatalf("exit code = %d (err: %v), want %d", got, err, cli.ExitDegraded)
	}
	data, rerr := os.ReadFile(reportPath)
	if rerr != nil {
		t.Fatalf("report not written: %v", rerr)
	}
	for _, key := range []string{`"phase": "replay"`, `"degraded": true`, `"recovered_step"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("report lacks %s:\n%s", key, data)
		}
	}
}
