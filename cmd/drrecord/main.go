// Command drrecord is the PinPlay-style logger: it runs a program
// natively, fast-forwards to an execution region (skip/length in
// main-thread instructions) and captures the region into a pinball.
//
// Usage:
//
//	drrecord -file bug.c -seed 7 -o bug.pinball              # whole run
//	drrecord -workload blackscholes -input 4,100000 \
//	         -skip 1000 -length 100000 -o region.pinball     # region
//	drrecord -file bug.c -until-failure -maxseed 200 -o bug.pinball
package main

import (
	"flag"
	"fmt"
	"os"

	drdebug "repro"
	"repro/cmd/internal/cli"
	"repro/internal/pinplay"
)

func main() {
	var (
		file     = flag.String("file", "", "mini-C (.c) or assembly (.s) source file")
		workload = flag.String("workload", "", "built-in workload: "+cli.WorkloadNames())
		seed     = flag.Int64("seed", 1, "scheduling seed")
		quantum  = flag.Int64("quantum", 1000, "mean preemption quantum")
		input    = flag.String("input", "", "program input words, comma separated")
		skip     = flag.Int64("skip", 0, "main-thread instructions to skip before logging")
		length   = flag.Int64("length", 0, "main-thread instructions to log (0 = to program end)")
		fromLoc  = flag.String("from", "", "region start point (file:line, function, or pc)")
		toLoc    = flag.String("to", "", "region end point (file:line, function, or pc; empty = program end)")
		fromNth  = flag.Int64("from-nth", 1, "dynamic instance of the start point")
		toNth    = flag.Int64("to-nth", 1, "dynamic instance of the end point")
		untilF   = flag.Bool("until-failure", false, "search seeds until the program fails, then capture")
		maxSeed  = flag.Int64("maxseed", 100, "seed search bound for -until-failure")
		ckEvery  = flag.Int64("checkpoint-every", 0, "divergence-checkpoint cadence in per-thread instructions (0 = default, negative = disable)")
		journal  = flag.String("journal", "", "also journal the recording to this path while it runs (crash-safe: a crash leaves a salvageable file for drrepair)")
		jEvery   = flag.Int64("journal-every", 0, "journal flush cadence in region instructions (0 = default; smaller = finer crash granularity, more fsyncs)")
		ringB    = flag.Int64("ring-bytes", 0, "flight-recorder mode: keep the recording within this byte budget, evicting the oldest windows (0 = record everything)")
		sample   = flag.Int64("sample", 0, "flight-recorder sampling: keep 1 window in N, evict the rest (0/1 = keep all); implies flight-recorder mode")
		out      = flag.String("o", "out.pinball", "output pinball path")
	)
	flag.Parse()

	if err := run(*file, *workload, *seed, *quantum, *input, *skip, *length,
		*fromLoc, *toLoc, *fromNth, *toNth, *untilF, *maxSeed, *ckEvery, *journal, *jEvery, *ringB, *sample, *out); err != nil {
		os.Exit(cli.Fail("drrecord", err))
	}
}

func run(file, workload string, seed, quantum int64, input string, skip, length int64,
	fromLoc, toLoc string, fromNth, toNth int64, untilFailure bool, maxSeed, ckEvery int64, journal string, jEvery, ringBytes, ringSample int64, out string) error {
	prog, _, err := cli.LoadProgram(file, workload)
	if err != nil {
		return err
	}
	in, err := cli.ParseInput(input)
	if err != nil {
		return err
	}
	cfg := drdebug.LogConfig{Seed: seed, MeanQuantum: quantum, Input: in, RandSeed: seed,
		CheckpointEvery: ckEvery, JournalPath: journal, JournalEvery: jEvery,
		RingBytes: ringBytes, RingSample: ringSample}

	var sess *drdebug.Session
	if fromLoc != "" {
		// Point-based region selection: record between two code
		// locations (paper §2, "specifying its start and end points").
		startPC, err := prog.ResolveLocation(fromLoc)
		if err != nil {
			return err
		}
		endPC := int64(-1)
		if toLoc != "" {
			endPC, err = prog.ResolveLocation(toLoc)
			if err != nil {
				return err
			}
		}
		pb, err := pinplay.LogBetween(prog, cfg, pinplay.PointSpec{
			StartPC: startPC, StartInstance: fromNth, EndPC: endPC, EndInstance: toNth,
		})
		if err != nil {
			return err
		}
		sess = drdebug.Open(prog, pb)
	} else if untilFailure {
		for s := seed; s < seed+maxSeed; s++ {
			cfg.Seed, cfg.RandSeed = s, s
			sess, err = drdebug.RecordFailure(prog, cfg, skip)
			if err == nil {
				fmt.Printf("failure exposed with seed %d: %v\n", s, sess.Pinball.Failure)
				break
			}
		}
		if sess == nil {
			return fmt.Errorf("no failure within %d seeds (try drmaple)", maxSeed)
		}
	} else {
		sess, err = drdebug.RecordRegion(prog, cfg, drdebug.RegionSpec{SkipMain: skip, LengthMain: length})
		if err != nil {
			return err
		}
	}
	pb := sess.Pinball
	if err := pb.Save(out); err != nil {
		return err
	}
	sz, _ := pb.EncodedSize()
	fmt.Printf("pinball %s: %d instructions (%d main thread), end=%s, %d checkpoints, %d bytes compressed\n",
		out, pb.RegionInstrs, pb.MainInstrs, pb.EndReason, len(pb.Checkpoints), sz)
	if pb.RingBytes > 0 || pb.SampleKeep > 1 || pb.Gapped() {
		fmt.Printf("flight recorder: %d windows evicted (%d instructions bridgeable on replay), budget %d bytes, sample 1-in-%d\n",
			len(pb.Evictions), pb.GapInstrs(), pb.RingBytes, max(pb.SampleKeep, 1))
	}
	return nil
}
