// Command drdual performs dual slicing: slice the same variable in a
// failing and a passing pinball of the same program and report the
// statements only the failing run's slice contains — where the failing
// computation diverged.
//
// Usage:
//
//	drdual -file race.c -fail fail.pinball -pass pass.pinball -var result
package main

import (
	"flag"
	"fmt"
	"os"

	drdebug "repro"
	"repro/cmd/internal/cli"
	"repro/internal/core"
)

func main() {
	var (
		file     = flag.String("file", "", "mini-C (.c) or assembly (.s) source file")
		workload = flag.String("workload", "", "built-in workload: "+cli.WorkloadNames())
		failPB   = flag.String("fail", "", "failing-run pinball (required)")
		passPB   = flag.String("pass", "", "passing-run pinball (required)")
		varName  = flag.String("var", "", "global variable whose computation to compare (required)")
	)
	flag.Parse()

	if err := run(*file, *workload, *failPB, *passPB, *varName); err != nil {
		fmt.Fprintln(os.Stderr, "drdual:", err)
		os.Exit(1)
	}
}

func run(file, workload, failPB, passPB, varName string) error {
	prog, _, err := cli.LoadProgram(file, workload)
	if err != nil {
		return err
	}
	if failPB == "" || passPB == "" || varName == "" {
		return fmt.Errorf("need -fail, -pass and -var")
	}
	failing, err := drdebug.LoadSession(prog, failPB)
	if err != nil {
		return err
	}
	passing, err := drdebug.LoadSession(prog, passPB)
	if err != nil {
		return err
	}
	d, err := core.DualSlice(failing, passing, varName)
	if err != nil {
		return err
	}
	fmt.Printf("dual slice of %q: failing %s vs passing %s\n", varName, failPB, passPB)
	d.WriteText(os.Stdout)
	return nil
}
