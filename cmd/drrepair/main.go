// Command drrepair salvages damaged pinball files: it keeps the longest
// checksum-valid prefix of sections, truncates an interrupted recording
// journal to its last intact divergence checkpoint, and writes the
// recovered pinball back out as a clean framed file.
//
// Usage:
//
//	drrepair -pinball damaged.pinball [-out repaired.pinball] [-json] [-dry-run]
//
// Without -out the repaired pinball is written next to the input as
// <input>.repaired. An intact input is reported as such and nothing is
// written. -dry-run diagnoses without writing.
//
// Exit codes follow the shared drreplay/drdebug table (cmd/internal/cli):
// 0 the file is intact, 1 usage error, 2 the file is unsalvageable,
// 4 the file was damaged and repaired (degraded — with -dry-run,
// diagnosed as repairable). A damaged input never exits 0, so scripts
// can chain drrepair with the replay tools and treat any non-zero
// status uniformly as "this pinball needed attention".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	drdebug "repro"
	"repro/cmd/internal/cli"
)

func main() {
	var (
		pinballP = flag.String("pinball", "", "damaged pinball file (required)")
		out      = flag.String("out", "", "where to write the repaired pinball (default <input>.repaired)")
		jsonOut  = flag.Bool("json", false, "print the salvage report as JSON on stdout")
		dryRun   = flag.Bool("dry-run", false, "diagnose only, write nothing")
	)
	flag.Parse()
	if err := run(*pinballP, *out, *jsonOut, *dryRun); err != nil {
		os.Exit(cli.Fail("drrepair", err))
	}
}

func run(path, out string, jsonOut, dryRun bool) error {
	if path == "" {
		return fmt.Errorf("need -pinball <file>")
	}
	pb, rep, err := drdebug.SalvagePinball(path)
	if rep != nil && jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if jerr := enc.Encode(rep); jerr != nil {
			return jerr
		}
	}
	if err != nil {
		if !jsonOut && rep != nil {
			fmt.Fprintln(os.Stderr, rep.Summary())
		}
		return err
	}
	if !jsonOut {
		fmt.Println(rep.Summary())
	}
	if rep.Intact {
		return nil
	}
	if dryRun {
		return fmt.Errorf("pinball is damaged but repairable: %w", cli.ErrDegraded)
	}
	if out == "" {
		out = path + ".repaired"
	}
	if err := pb.Save(out); err != nil {
		return err
	}
	if !jsonOut {
		fmt.Printf("repaired pinball written to %s\n", out)
	}
	return fmt.Errorf("pinball was damaged and repaired into %s: %w", out, cli.ErrDegraded)
}
