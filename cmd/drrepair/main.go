// Command drrepair salvages damaged pinball files: it keeps the longest
// checksum-valid prefix of sections, truncates an interrupted recording
// journal to its last intact divergence checkpoint, and writes the
// recovered pinball back out as a clean framed file.
//
// Usage:
//
//	drrepair -pinball damaged.pinball [-out repaired.pinball] [-json] [-dry-run]
//
// Without -out the repaired pinball is written next to the input as
// <input>.repaired. An intact input is reported as such and nothing is
// written. -dry-run diagnoses without writing.
//
// Verification mode re-hashes a pinball against its expected content
// digest — the identity the content-addressed store, circuit breakers
// and fleet routing all key on:
//
//	drrepair -verify -pinball f.pinball [-digest <hex>] [-store <root>]
//
// With -digest the file must hash to exactly that digest; with -store
// the hash must name a live entry of that store whose manifest metadata
// matches the file's size. Either mismatch exits non-zero with a typed
// error, so a cron job can sweep a pinball directory against its store.
//
// Exit codes follow the shared drreplay/drdebug table (cmd/internal/cli):
// 0 the file is intact, 1 usage error, 2 the file is unsalvageable (or
// -verify found a digest mismatch), 4 the file was damaged and repaired
// (degraded — with -dry-run, diagnosed as repairable), 10 -store has no
// entry for the file's digest. A damaged input never exits 0, so
// scripts can chain drrepair with the replay tools and treat any
// non-zero status uniformly as "this pinball needed attention".
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	drdebug "repro"
	"repro/cmd/internal/cli"
	"repro/internal/store"
)

func main() {
	var (
		pinballP = flag.String("pinball", "", "damaged pinball file (required)")
		out      = flag.String("out", "", "where to write the repaired pinball (default <input>.repaired)")
		jsonOut  = flag.Bool("json", false, "print the salvage report as JSON on stdout")
		dryRun   = flag.Bool("dry-run", false, "diagnose only, write nothing")

		verify    = flag.Bool("verify", false, "verify the file's content digest instead of repairing")
		digest    = flag.String("digest", "", "verify: the digest the file must hash to")
		storeRoot = flag.String("store", "", "verify: store root whose manifest must hold the file's digest")
	)
	flag.Parse()
	if *verify {
		os.Exit(runVerify(*pinballP, *digest, *storeRoot, *jsonOut))
	}
	if err := run(*pinballP, *out, *jsonOut, *dryRun); err != nil {
		os.Exit(cli.Fail("drrepair", err))
	}
}

// verifyReport is -verify's JSON output shape.
type verifyReport struct {
	Pinball string `json:"pinball"`
	Digest  string `json:"digest"`
	Size    int64  `json:"size"`
	Want    string `json:"want,omitempty"`     // expected digest, when -digest given
	Match   bool   `json:"match"`              // digest (and store entry, if checked) agree
	InStore bool   `json:"in_store,omitempty"` // manifest holds the digest, when -store given
	Error   string `json:"error,omitempty"`
}

// runVerify re-hashes one pinball file against its expected identity
// and returns the process exit code.
func runVerify(path, want, storeRoot string, jsonOut bool) int {
	finish := func(rep verifyReport, err error) int {
		if err != nil {
			rep.Error = err.Error()
		}
		if jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			enc.Encode(rep)
		}
		if err == nil {
			if !jsonOut {
				fmt.Printf("%s %s verified\n", rep.Digest, path)
			}
			return 0
		}
		fmt.Fprintf(os.Stderr, "drrepair: %v\n", err)
		switch {
		case errors.Is(err, store.ErrDigestMismatch):
			return cli.ExitBadPinball
		case errors.Is(err, store.ErrNotFound):
			return cli.ExitStoreUnavailable
		}
		return cli.ExitCode(err)
	}

	rep := verifyReport{Pinball: path}
	if path == "" {
		return finish(rep, fmt.Errorf("need -pinball <file>"))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return finish(rep, err)
	}
	rep.Size = int64(len(data))
	rep.Digest = store.Digest(data)

	if want != "" {
		rep.Want = want
		if rep.Digest != want {
			return finish(rep, fmt.Errorf("%w: %s hashes to %s, want %s",
				store.ErrDigestMismatch, path, rep.Digest, want))
		}
		rep.Match = true
	}
	if storeRoot != "" {
		s, err := store.Open(storeRoot)
		if err != nil {
			return finish(rep, err)
		}
		info, err := s.Stat(rep.Digest)
		if err != nil {
			return finish(rep, fmt.Errorf("store at %s: digest %s: %w", storeRoot, rep.Digest, err))
		}
		rep.InStore = true
		if info.Size != rep.Size {
			return finish(rep, fmt.Errorf("%w: manifest records %d bytes for %s, file has %d",
				store.ErrDigestMismatch, info.Size, rep.Digest, rep.Size))
		}
		rep.Match = true
	}
	if want == "" && storeRoot == "" {
		// No external identity to compare against: the digest itself is
		// the output, but the file must at least be a loadable pinball.
		if _, err := drdebug.LoadPinball(path); err != nil {
			return finish(rep, err)
		}
		rep.Match = true
	}
	return finish(rep, nil)
}

func run(path, out string, jsonOut, dryRun bool) error {
	if path == "" {
		return fmt.Errorf("need -pinball <file>")
	}
	pb, rep, err := drdebug.SalvagePinball(path)
	if rep != nil && jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if jerr := enc.Encode(rep); jerr != nil {
			return jerr
		}
	}
	if err != nil {
		if !jsonOut && rep != nil {
			fmt.Fprintln(os.Stderr, rep.Summary())
		}
		return err
	}
	if !jsonOut {
		fmt.Println(rep.Summary())
	}
	if rep.Intact {
		return nil
	}
	if dryRun {
		return fmt.Errorf("pinball is damaged but repairable: %w", cli.ErrDegraded)
	}
	if out == "" {
		out = path + ".repaired"
	}
	if err := pb.Save(out); err != nil {
		return err
	}
	if !jsonOut {
		fmt.Printf("repaired pinball written to %s\n", out)
	}
	return fmt.Errorf("pinball was damaged and repaired into %s: %w", out, cli.ErrDegraded)
}
