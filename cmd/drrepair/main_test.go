package main

import (
	"os"
	"path/filepath"
	"testing"

	drdebug "repro"
	"repro/cmd/internal/cli"
	"repro/internal/pinball"
	"repro/internal/pinplay"
	"repro/internal/store"
)

const repairSrc = `
int counter;
int main() {
	int i;
	for (i = 0; i < 40; i++) {
		counter = counter + read();
	}
	write(counter);
	return 0;
}`

// repairFixture records a small program and lays out the inputs the
// exit-code table loads: an intact pinball, a salvageable torn journal
// (commit frame cut off) and an unsalvageable garbage file.
type repairFixture struct {
	intact  string
	torn    string
	garbage string
}

func makeRepairFixture(t *testing.T) *repairFixture {
	t.Helper()
	dir := t.TempDir()
	src := filepath.Join(dir, "repair.c")
	if err := os.WriteFile(src, []byte(repairSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	prog, err := drdebug.CompileFile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	input := make([]int64, 64)
	for i := range input {
		input[i] = int64(i + 1)
	}
	cfg := pinplay.LogConfig{
		Seed: 3, Input: input, CheckpointEvery: 16,
		JournalPath:   filepath.Join(dir, "repair.journal"),
		JournalEvery:  64,
		JournalNoSync: true,
	}
	pb, err := pinplay.Log(prog, cfg, pinplay.RegionSpec{})
	if err != nil {
		t.Fatalf("log: %v", err)
	}

	f := &repairFixture{
		intact:  filepath.Join(dir, "intact.pinball"),
		torn:    filepath.Join(dir, "torn.journal"),
		garbage: filepath.Join(dir, "garbage.pinball"),
	}
	if err := pb.Save(f.intact); err != nil {
		t.Fatal(err)
	}

	jdata, err := os.ReadFile(cfg.JournalPath)
	if err != nil {
		t.Fatal(err)
	}
	secs, err := pinball.SectionOffsets(jdata)
	if err != nil || len(secs) < 3 {
		t.Fatalf("journal sections: %d, %v", len(secs), err)
	}
	if err := os.WriteFile(f.torn, jdata[:secs[len(secs)-1].Off], 0o644); err != nil {
		t.Fatal(err)
	}

	if err := os.WriteFile(f.garbage, []byte("this is not a pinball at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestExitCodes pins drrepair to the shared 0–6 exit-code table: intact
// 0, usage 1, unsalvageable 2, repaired (degraded) 4.
func TestExitCodes(t *testing.T) {
	f := makeRepairFixture(t)
	outDir := t.TempDir()
	for _, tc := range []struct {
		name    string
		pinball string
		out     string
		dryRun  bool
		want    int
	}{
		{name: "intact", pinball: f.intact, want: 0},
		{name: "missing-pinball-flag", pinball: "", want: cli.ExitUsage},
		{name: "unsalvageable", pinball: f.garbage, want: cli.ExitBadPinball},
		{name: "repaired-degraded", pinball: f.torn,
			out: filepath.Join(outDir, "repaired.pinball"), want: cli.ExitDegraded},
		{name: "dry-run-damaged", pinball: f.torn, dryRun: true, want: cli.ExitDegraded},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.pinball, tc.out, false, tc.dryRun)
			if got := cli.ExitCode(err); got != tc.want {
				t.Fatalf("exit code = %d (err: %v), want %d", got, err, tc.want)
			}
		})
	}
	// The repaired output must itself load cleanly and replay-validate.
	repaired := filepath.Join(outDir, "repaired.pinball")
	pb, err := pinball.Load(repaired)
	if err != nil {
		t.Fatalf("repaired pinball does not load: %v", err)
	}
	if err := pb.Validate(); err != nil {
		t.Fatalf("repaired pinball invalid: %v", err)
	}
}

// TestVerifyExitCodes pins `drrepair -verify` to the typed exit-code
// table: a clean digest match exits 0, a hash mismatch is a bad
// pinball (2), and a digest absent from the store is store-unavailable
// (10) — never a silent success.
func TestVerifyExitCodes(t *testing.T) {
	f := makeRepairFixture(t)
	data, err := os.ReadFile(f.intact)
	if err != nil {
		t.Fatal(err)
	}
	digest := store.Digest(data)

	root := t.TempDir()
	s, err := store.Open(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(data, store.PutMeta{Kind: "test"}); err != nil {
		t.Fatal(err)
	}

	// A second pinball file that is valid but was never stored.
	other := filepath.Join(t.TempDir(), "other.pinball")
	mutated := append([]byte(nil), data...)
	mutated = append(mutated, 0) // different content, different digest
	if err := os.WriteFile(other, mutated, 0o644); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name    string
		pinball string
		digest  string
		root    string
		want    int
	}{
		{name: "structural-only", pinball: f.intact, want: 0},
		{name: "digest-match", pinball: f.intact, digest: digest, want: 0},
		{name: "digest-mismatch", pinball: f.intact, digest: store.Digest([]byte("x")), want: cli.ExitBadPinball},
		{name: "store-match", pinball: f.intact, root: root, want: 0},
		{name: "store-both", pinball: f.intact, digest: digest, root: root, want: 0},
		{name: "not-in-store", pinball: other, root: root, want: cli.ExitStoreUnavailable},
		{name: "garbage-structural", pinball: f.garbage, want: cli.ExitBadPinball},
		{name: "missing-flag", pinball: "", want: cli.ExitUsage},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := runVerify(tc.pinball, tc.digest, tc.root, true); got != tc.want {
				t.Fatalf("runVerify = %d, want %d", got, tc.want)
			}
		})
	}

	// Flip one byte in a stored object's chunk on disk: -verify against
	// the store must surface the store's typed validation failure.
	// (The file itself still hashes to its digest; the *store copy* is
	// what rotted, so Stat/manifest still agree — corrupt the local
	// file instead to exercise the mismatch path end-to-end.)
	rotten := filepath.Join(t.TempDir(), "rotten.pinball")
	rot := append([]byte(nil), data...)
	rot[len(rot)/2] ^= 0x40
	if err := os.WriteFile(rotten, rot, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := runVerify(rotten, digest, "", true); got != cli.ExitBadPinball {
		t.Fatalf("bit-flipped pinball vs recorded digest: exit %d, want %d", got, cli.ExitBadPinball)
	}
}
