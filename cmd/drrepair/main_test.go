package main

import (
	"os"
	"path/filepath"
	"testing"

	drdebug "repro"
	"repro/cmd/internal/cli"
	"repro/internal/pinball"
	"repro/internal/pinplay"
)

const repairSrc = `
int counter;
int main() {
	int i;
	for (i = 0; i < 40; i++) {
		counter = counter + read();
	}
	write(counter);
	return 0;
}`

// repairFixture records a small program and lays out the inputs the
// exit-code table loads: an intact pinball, a salvageable torn journal
// (commit frame cut off) and an unsalvageable garbage file.
type repairFixture struct {
	intact  string
	torn    string
	garbage string
}

func makeRepairFixture(t *testing.T) *repairFixture {
	t.Helper()
	dir := t.TempDir()
	src := filepath.Join(dir, "repair.c")
	if err := os.WriteFile(src, []byte(repairSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	prog, err := drdebug.CompileFile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	input := make([]int64, 64)
	for i := range input {
		input[i] = int64(i + 1)
	}
	cfg := pinplay.LogConfig{
		Seed: 3, Input: input, CheckpointEvery: 16,
		JournalPath:   filepath.Join(dir, "repair.journal"),
		JournalEvery:  64,
		JournalNoSync: true,
	}
	pb, err := pinplay.Log(prog, cfg, pinplay.RegionSpec{})
	if err != nil {
		t.Fatalf("log: %v", err)
	}

	f := &repairFixture{
		intact:  filepath.Join(dir, "intact.pinball"),
		torn:    filepath.Join(dir, "torn.journal"),
		garbage: filepath.Join(dir, "garbage.pinball"),
	}
	if err := pb.Save(f.intact); err != nil {
		t.Fatal(err)
	}

	jdata, err := os.ReadFile(cfg.JournalPath)
	if err != nil {
		t.Fatal(err)
	}
	secs, err := pinball.SectionOffsets(jdata)
	if err != nil || len(secs) < 3 {
		t.Fatalf("journal sections: %d, %v", len(secs), err)
	}
	if err := os.WriteFile(f.torn, jdata[:secs[len(secs)-1].Off], 0o644); err != nil {
		t.Fatal(err)
	}

	if err := os.WriteFile(f.garbage, []byte("this is not a pinball at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestExitCodes pins drrepair to the shared 0–6 exit-code table: intact
// 0, usage 1, unsalvageable 2, repaired (degraded) 4.
func TestExitCodes(t *testing.T) {
	f := makeRepairFixture(t)
	outDir := t.TempDir()
	for _, tc := range []struct {
		name    string
		pinball string
		out     string
		dryRun  bool
		want    int
	}{
		{name: "intact", pinball: f.intact, want: 0},
		{name: "missing-pinball-flag", pinball: "", want: cli.ExitUsage},
		{name: "unsalvageable", pinball: f.garbage, want: cli.ExitBadPinball},
		{name: "repaired-degraded", pinball: f.torn,
			out: filepath.Join(outDir, "repaired.pinball"), want: cli.ExitDegraded},
		{name: "dry-run-damaged", pinball: f.torn, dryRun: true, want: cli.ExitDegraded},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.pinball, tc.out, false, tc.dryRun)
			if got := cli.ExitCode(err); got != tc.want {
				t.Fatalf("exit code = %d (err: %v), want %d", got, err, tc.want)
			}
		})
	}
	// The repaired output must itself load cleanly and replay-validate.
	repaired := filepath.Join(outDir, "repaired.pinball")
	pb, err := pinball.Load(repaired)
	if err != nil {
		t.Fatalf("repaired pinball does not load: %v", err)
	}
	if err := pb.Validate(); err != nil {
		t.Fatalf("repaired pinball invalid: %v", err)
	}
}
