package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	drdebug "repro"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// goldenSrc is a deterministic single-threaded program exercising the
// renderer's full surface: a data chain into a failing assert, a pruned
// save/restore pair (the guarded call), and excluded noise.
const goldenSrc = `
int sink;
int noise;
int q(int n) {
	sink = sink + n;
	return 0;
}
int p(int c, int d) {
	int e = d + d;
	if (c == 5) {
		q(1);
	}
	return e + 1;
}
int main() {
	int i;
	int c = read();
	for (i = 0; i < 8; i++) { noise = noise + i; }
	int w = p(c, 7);
	assert(w == 999);
	return 0;
}`

// goldenSession records the program and computes the failure slice with
// the given engine configuration.
func goldenSession(t *testing.T, workers int) (*drdebug.Session, *drdebug.Slice) {
	t.Helper()
	prog, err := drdebug.Compile("golden.c", goldenSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	sess, err := drdebug.RecordFailure(prog, drdebug.LogConfig{Seed: 1, Input: []int64{5}}, 0)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	sess.SetParallelWorkers(workers)
	sl, err := sess.SliceAtFailure()
	if err != nil {
		t.Fatalf("slice: %v", err)
	}
	return sess, sl
}

// compareGolden checks got against testdata/<name>, rewriting it under
// -update.
func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output differs from golden file (re-run with -update after reviewing)\n--- got ---\n%s", name, got)
	}
}

// TestGoldenTextReport locks the text renderer's output, for both
// engines: the byte-identical-slices guarantee must survive all the way
// through the CLI's rendering path.
func TestGoldenTextReport(t *testing.T) {
	var outputs [][]byte
	for _, workers := range []int{0, 4} {
		sess, sl := goldenSession(t, workers)
		var buf bytes.Buffer
		if err := writeSliceText(sess, sl, &buf); err != nil {
			t.Fatalf("render: %v", err)
		}
		outputs = append(outputs, buf.Bytes())
	}
	if !bytes.Equal(outputs[0], outputs[1]) {
		t.Fatalf("sequential and parallel text reports differ:\n--- sequential ---\n%s--- parallel ---\n%s",
			outputs[0], outputs[1])
	}
	compareGolden(t, "failure_slice.txt", outputs[0])
}

// TestGoldenHTMLReport locks the HTML renderer's output (source listing
// highlighted in place), again for both engines.
func TestGoldenHTMLReport(t *testing.T) {
	sources := map[string]string{"golden.c": goldenSrc}
	var outputs [][]byte
	for _, workers := range []int{0, 4} {
		sess, sl := goldenSession(t, workers)
		var buf bytes.Buffer
		if err := renderSliceHTML(sess, sl, sources, &buf); err != nil {
			t.Fatalf("render: %v", err)
		}
		outputs = append(outputs, buf.Bytes())
	}
	if !bytes.Equal(outputs[0], outputs[1]) {
		t.Fatal("sequential and parallel HTML reports differ")
	}
	compareGolden(t, "failure_slice.html", outputs[0])
}
