// Command drslice is the batch slicer: it replays a pinball with the
// tracing pintool, computes a backward dynamic slice (of the failure
// point, a variable's last read, or a file:line instance), prints it, and
// can emit the slice file and the relogged slice pinball.
//
// Usage:
//
//	drslice -file bug.c -pinball bug.pinball                   # failure slice
//	drslice -file bug.c -pinball bug.pinball -var counter
//	drslice -file bug.c -pinball bug.pinball -tid 1 -line 12
//	drslice ... -o bug.slice -exec -opinball bug-slice.pinball
//	drslice ... -no-prune -no-refine                           # precision ablations
//	drslice ... -workers 8 -cache-stats                        # parallel engine
//
// Exit codes: 0 success, 1 usage/tool error, 2 the pinball file failed
// to load (or salvage), 3 the pinball loaded but a replay of it failed
// (divergence checkpoint, schedule mismatch, or an execution limit hit),
// 4 the slice was computed but from a salvaged pinball (-salvage), 9 the
// slice crosses flight-recorder gaps whose content is estimated (every
// non-exact dependence edge is tagged with its provenance).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	drdebug "repro"
	"repro/cmd/internal/cli"
)

func main() {
	var (
		file     = flag.String("file", "", "mini-C (.c) or assembly (.s) source file")
		workload = flag.String("workload", "", "built-in workload: "+cli.WorkloadNames())
		pinballP = flag.String("pinball", "", "region pinball to slice (required)")
		varName  = flag.String("var", "", "slice the last read of this global variable")
		tid      = flag.Int("tid", -1, "with -line: thread id of the criterion")
		line     = flag.Int("line", 0, "with -tid: source line of the criterion")
		nth      = flag.Int("nth", 1, "with -line: dynamic instance of the line")
		noPrune  = flag.Bool("no-prune", false, "disable §5.2 save/restore pruning")
		noRefine = flag.Bool("no-refine", false, "disable §5.1 dynamic CFG refinement")
		maxSave  = flag.Int("maxsave", 10, "save/restore detector scan depth")
		out      = flag.String("o", "", "write the slice file here")
		htmlOut  = flag.String("html", "", "write an HTML slice report here")
		execSl   = flag.Bool("exec", false, "relog into a slice pinball")
		outPB    = flag.String("opinball", "slice.pinball", "slice pinball path (with -exec)")
		budget   = flag.Int64("budget", 0, "instruction budget per replay (0 = unbounded)")
		deadline = flag.Duration("deadline", 0, "wall-clock limit per replay (0 = unbounded)")
		workers  = flag.Int("workers", 0, "slice with the sharded parallel engine on this many workers (0 = sequential)")
		cacheSt  = flag.Bool("cache-stats", false, "print dependence-graph cache statistics")
		salvage  = flag.Bool("salvage", false, "salvage a damaged pinball file instead of rejecting it")
	)
	flag.Parse()

	if err := run(*file, *workload, *pinballP, *varName, *tid, *line, *nth,
		*noPrune, *noRefine, *maxSave, *out, *htmlOut, *execSl, *outPB,
		*workers, *cacheSt, *salvage, cli.Limits(*budget, *deadline)); err != nil {
		os.Exit(cli.Fail("drslice", err))
	}
}

func run(file, workload, pinballPath, varName string, tid, line, nth int,
	noPrune, noRefine bool, maxSave int, out, htmlOut string, execSl bool, outPB string,
	workers int, cacheSt, salvage bool, limits drdebug.Limits) error {
	prog, _, err := cli.LoadProgram(file, workload)
	if err != nil {
		return err
	}
	if pinballPath == "" {
		return fmt.Errorf("need -pinball")
	}
	pb, salvaged, err := cli.LoadPinballMaybeSalvage("drslice", pinballPath, salvage)
	if err != nil {
		return err
	}
	if pb.ProgramName != prog.Name {
		return fmt.Errorf("pinball was recorded from %q, not %q", pb.ProgramName, prog.Name)
	}
	sess := drdebug.Open(prog, pb)
	sess.SetLimits(limits)
	opts := drdebug.DefaultSliceOptions()
	opts.MaxSave = maxSave
	opts.PruneSaveRestore = !noPrune
	opts.DisableRefinement = noRefine
	sess.SetSliceOptions(opts)
	sess.SetParallelWorkers(workers)

	start := time.Now()
	var sl *drdebug.Slice
	switch {
	case varName != "":
		sl, err = sess.SliceForVariable(varName)
	case line > 0 && tid >= 0:
		sl, err = sess.SliceAtLine(tid, int32(line), nth)
	default:
		sl, err = sess.SliceAtFailure()
	}
	if err != nil {
		return err
	}
	fmt.Printf("slice computed in %.3fs: %d of %d dynamic instructions\n",
		time.Since(start).Seconds(), sl.Stats.Members, sl.Stats.TraceLen)
	if br := sess.GapReport(); br != nil {
		fmt.Printf("flight recorder: bridged %d evicted windows (%d instructions re-derived): %d exact, %d estimated\n",
			br.Windows, br.GapInstrs, br.Exact, len(br.Estimated))
	}
	if sl.Prov != nil {
		fmt.Printf("provenance: %s\n", sl.Prov)
	}
	fmt.Printf("precision: %d CFG refinements, %d save/restore pairs, %d bypasses, LP %d/%d blocks skipped\n",
		sl.Stats.CFGRefinements, sl.Stats.VerifiedPairs, sl.Stats.PrunedBypasses,
		sl.Stats.LPBlocksSkip, sl.Stats.LPBlocksSkip+sl.Stats.LPBlocksVisit)
	if workers > 0 {
		eng, err := sess.ParallelSlicer()
		if err != nil {
			return err
		}
		es := eng.Stats()
		fmt.Printf("engine: %d workers, %d shards, %d indexed defs\n",
			es.Workers, es.Shards, es.IndexDefs)
	}
	if cacheSt {
		gs := drdebug.CFGCacheStats()
		engs := drdebug.SliceEngineCacheStats()
		fmt.Printf("cfg cache: %d graphs, %d hits, %d misses\n", gs.Entries, gs.Hits, gs.Misses)
		fmt.Printf("engine cache: %d engines, %d hits, %d misses\n", engs.Entries, engs.Hits, engs.Misses)
	}

	if err := writeSliceText(sess, sl, os.Stdout); err != nil {
		return err
	}
	if out != "" {
		if err := sess.SaveSlice(sl, out); err != nil {
			return err
		}
		fmt.Printf("slice file written to %s\n", out)
	}
	if htmlOut != "" {
		if err := writeSliceHTML(sess, sl, file, htmlOut); err != nil {
			return err
		}
		fmt.Printf("HTML slice report written to %s\n", htmlOut)
	}
	if execSl {
		spb, ex, err := sess.ExecutionSlice(sl)
		if err != nil {
			return err
		}
		if err := spb.Save(outPB); err != nil {
			return err
		}
		fmt.Printf("slice pinball %s: %d instructions (%.1f%% of region), %d exclusion regions\n",
			outPB, spb.RegionInstrs, 100*float64(spb.RegionInstrs)/float64(sess.Pinball.RegionInstrs), len(ex))
	}
	if sl.Prov != nil && sl.Prov.Degraded() {
		return fmt.Errorf("slice crosses hash-unverified flight-recorder gaps: %w", cli.ErrEstimated)
	}
	if salvaged {
		return fmt.Errorf("slice computed from a salvaged pinball: %w", cli.ErrDegraded)
	}
	return nil
}

// writeSliceHTML renders the KDbg-style HTML report; when the program
// came from a source file, the listing is highlighted in place.
func writeSliceHTML(sess *drdebug.Session, sl *drdebug.Slice, srcPath, htmlOut string) error {
	sources := map[string]string{}
	if srcPath != "" {
		if data, err := os.ReadFile(srcPath); err == nil {
			sources[srcPath] = string(data)
		}
	}
	w, err := os.Create(htmlOut)
	if err != nil {
		return err
	}
	defer w.Close()
	if err := renderSliceHTML(sess, sl, sources, w); err != nil {
		return err
	}
	return w.Close()
}

// renderSliceHTML writes the HTML report for a computed slice.
func renderSliceHTML(sess *drdebug.Session, sl *drdebug.Slice, sources map[string]string, w io.Writer) error {
	f, err := sliceFileOf(sess, sl)
	if err != nil {
		return err
	}
	return f.WriteHTML(w, sources)
}

// sliceFileOf converts a computed slice into its persistable form via a
// temporary file.
func sliceFileOf(sess *drdebug.Session, sl *drdebug.Slice) (*drdebug.SliceFile, error) {
	tmp, err := os.CreateTemp("", "drslice-*.slice")
	if err != nil {
		return nil, err
	}
	tmpPath := tmp.Name()
	tmp.Close()
	defer os.Remove(tmpPath)
	if err := sess.SaveSlice(sl, tmpPath); err != nil {
		return nil, err
	}
	return drdebug.LoadSliceFile(tmpPath)
}

// writeSliceText renders the slice in the human-readable slice-file form.
func writeSliceText(sess *drdebug.Session, sl *drdebug.Slice, w io.Writer) error {
	f, err := sliceFileOf(sess, sl)
	if err != nil {
		return err
	}
	return f.WriteText(w)
}
