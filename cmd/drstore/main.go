// Command drstore manages the content-addressed pinball store: the
// deduplicated, validated-on-read object store drserved daemons serve
// digest-named sessions from (internal/store).
//
// Usage:
//
//	drstore put    [-root dir | -addr daemon] [-program p] [-kind k] <pinball>...
//	drstore get    [-root dir | -addr daemon] [-o out] <digest>
//	drstore stat   [-root dir | -addr daemon] <digest|prefix>
//	drstore ls     [-root dir] [prefix]
//	drstore gc     [-root dir] [-keep-last n] [-max-bytes n] [-dry-run]
//	drstore verify [-root dir]
//	drstore pin    [-root dir] <digest|prefix>
//	drstore unpin  [-root dir] <digest|prefix>
//
// With -root the tool operates on a store directory directly; with
// -addr it speaks the sessiond store ops to a daemon (or a fleet
// coordinator, which places puts on the digest's rendezvous owner and
// replicates them to its successor). gc, verify, pin and ls are
// local-only: they are the operator's maintenance surface, run against
// the store root on the machine that owns it.
//
// Exit codes follow the shared table (cmd/internal/cli): 0 success,
// 1 usage, 2 corrupt content (a validation-on-read or verify failure),
// 10 store unavailable (no such digest, or the daemon is unreachable).
// `drstore verify` exits non-zero whenever the store is not provably
// clean, so it can gate CI and cron the way fsck gates a mount.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/cmd/internal/cli"
	"repro/internal/sessiond"
	"repro/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(cli.ExitUsage)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var code int
	switch cmd {
	case "put":
		code = cmdPut(args)
	case "get":
		code = cmdGet(args)
	case "stat":
		code = cmdStat(args)
	case "ls":
		code = cmdLs(args)
	case "gc":
		code = cmdGC(args)
	case "verify":
		code = cmdVerify(args)
	case "pin":
		code = cmdPin(args, true)
	case "unpin":
		code = cmdPin(args, false)
	case "-h", "-help", "--help", "help":
		usage()
		code = 0
	default:
		fmt.Fprintf(os.Stderr, "drstore: unknown command %q\n", cmd)
		usage()
		code = cli.ExitUsage
	}
	os.Exit(code)
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  drstore put    [-root dir | -addr daemon] [-program p] [-kind k] <pinball>...
  drstore get    [-root dir | -addr daemon] [-o out] <digest>
  drstore stat   [-root dir | -addr daemon] <digest|prefix>
  drstore ls     [-root dir] [prefix]
  drstore gc     [-root dir] [-keep-last n] [-max-bytes n] [-dry-run]
  drstore verify [-root dir]
  drstore pin    [-root dir] <digest|prefix>
  drstore unpin  [-root dir] <digest|prefix>
`)
}

// fail prints err and types it onto the shared exit-code table.
func fail(err error) int {
	fmt.Fprintf(os.Stderr, "drstore: %v\n", err)
	switch {
	case errors.Is(err, store.ErrObjectCorrupt),
		errors.Is(err, store.ErrObjectMissing),
		errors.Is(err, store.ErrDigestMismatch),
		errors.Is(err, store.ErrManifestCorrupt),
		errors.Is(err, store.ErrManifestTorn):
		return cli.ExitBadPinball
	case errors.Is(err, store.ErrNotFound):
		return cli.ExitStoreUnavailable
	}
	return cli.ExitCode(err)
}

// openLocal opens the store at root, defaulting to $DRSTORE_ROOT.
func openLocal(root string) (*store.Store, error) {
	if root == "" {
		root = os.Getenv("DRSTORE_ROOT")
	}
	if root == "" {
		return nil, fmt.Errorf("need -root <dir> (or DRSTORE_ROOT)")
	}
	return store.Open(root)
}

// remote performs one store op against a daemon and prints its result
// JSON, returning the shared exit code.
func remote(addr string, req *sessiond.Request) int {
	req.Proto = sessiond.ProtoCurrent
	c, err := cli.DialSession(addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drstore: %v\n", err)
		return cli.ExitStoreUnavailable
	}
	defer c.Close()
	resp, err := c.Do(req)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drstore: %v\n", err)
		return cli.ExitStoreUnavailable
	}
	if !resp.OK {
		fmt.Fprintf(os.Stderr, "drstore: %s: %s\n", resp.Code, resp.Error)
		return cli.SessionExitCode(resp)
	}
	printJSON(resp.Result)
	return cli.SessionExitCode(resp)
}

func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if raw, ok := v.(json.RawMessage); ok {
		var any any
		if err := json.Unmarshal(raw, &any); err == nil {
			enc.Encode(any)
			return
		}
	}
	enc.Encode(v)
}

func cmdPut(args []string) int {
	fs := flag.NewFlagSet("put", flag.ExitOnError)
	root := fs.String("root", "", "local store root")
	addr := fs.String("addr", "", "daemon or coordinator address")
	program := fs.String("program", "", "program name recorded with the entry")
	kind := fs.String("kind", "", "entry kind recorded with the entry")
	fs.Parse(args)
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "drstore: put needs at least one pinball file")
		return cli.ExitUsage
	}
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return fail(err)
		}
		if *addr != "" {
			if code := remote(*addr, &sessiond.Request{
				Op: sessiond.OpStorePut, Blob: data,
				StoreProgram: *program, StoreKind: *kind,
			}); code != 0 {
				return code
			}
			continue
		}
		s, err := openLocal(*root)
		if err != nil {
			return fail(err)
		}
		res, err := s.Put(data, store.PutMeta{Program: *program, Kind: *kind})
		if err != nil {
			return fail(fmt.Errorf("%s: %w", path, err))
		}
		printJSON(res)
	}
	return 0
}

func cmdGet(args []string) int {
	fs := flag.NewFlagSet("get", flag.ExitOnError)
	root := fs.String("root", "", "local store root")
	addr := fs.String("addr", "", "daemon or coordinator address")
	out := fs.String("o", "", "output file (default <digest>.pinball)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "drstore: get needs exactly one digest")
		return cli.ExitUsage
	}
	digest := fs.Arg(0)
	outPath := *out
	if outPath == "" {
		outPath = digest + ".pinball"
	}
	var data []byte
	if *addr != "" {
		req := &sessiond.Request{Op: sessiond.OpStoreFetch, Digest: digest, Proto: sessiond.ProtoCurrent}
		c, err := cli.DialSession(*addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drstore: %v\n", err)
			return cli.ExitStoreUnavailable
		}
		defer c.Close()
		resp, err := c.Do(req)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drstore: %v\n", err)
			return cli.ExitStoreUnavailable
		}
		if !resp.OK {
			fmt.Fprintf(os.Stderr, "drstore: %s: %s\n", resp.Code, resp.Error)
			return cli.SessionExitCode(resp)
		}
		var fr sessiond.StoreFetchResult
		if err := json.Unmarshal(resp.Result, &fr); err != nil {
			return fail(err)
		}
		// Trust nothing off the wire: re-hash before writing.
		if got := store.Digest(fr.Blob); store.ValidDigest(digest) && got != digest {
			return fail(fmt.Errorf("%w: daemon returned bytes hashing to %s, want %s",
				store.ErrDigestMismatch, got, digest))
		}
		data = fr.Blob
		if fr.Healed {
			fmt.Fprintf(os.Stderr, "drstore: daemon healed its copy of %s before serving\n", fr.Digest)
		}
	} else {
		s, err := openLocal(*root)
		if err != nil {
			return fail(err)
		}
		if !store.ValidDigest(digest) {
			if digest, err = s.Resolve(digest); err != nil {
				return fail(err)
			}
			if *out == "" {
				outPath = digest + ".pinball"
			}
		}
		if data, err = s.Get(digest); err != nil {
			return fail(err)
		}
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return fail(err)
	}
	fmt.Printf("%s -> %s (%d bytes)\n", digest, outPath, len(data))
	return 0
}

func cmdStat(args []string) int {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	root := fs.String("root", "", "local store root")
	addr := fs.String("addr", "", "daemon or coordinator address")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "drstore: stat needs exactly one digest")
		return cli.ExitUsage
	}
	if *addr != "" {
		return remote(*addr, &sessiond.Request{Op: sessiond.OpStoreStat, Digest: fs.Arg(0)})
	}
	s, err := openLocal(*root)
	if err != nil {
		return fail(err)
	}
	digest := fs.Arg(0)
	if !store.ValidDigest(digest) {
		if digest, err = s.Resolve(digest); err != nil {
			return fail(err)
		}
	}
	info, err := s.Stat(digest)
	if err != nil {
		return fail(err)
	}
	printJSON(info)
	return 0
}

func cmdLs(args []string) int {
	fs := flag.NewFlagSet("ls", flag.ExitOnError)
	root := fs.String("root", "", "local store root")
	fs.Parse(args)
	s, err := openLocal(*root)
	if err != nil {
		return fail(err)
	}
	prefix := ""
	if fs.NArg() > 0 {
		prefix = fs.Arg(0)
	}
	infos, err := s.List(prefix)
	if err != nil {
		return fail(err)
	}
	for _, info := range infos {
		flags := " "
		if info.Pinned {
			flags = "P"
		}
		if info.Leased {
			flags += "L"
		}
		fmt.Printf("%s %8d %2d %s %s %s\n", info.Digest, info.Size, info.Chunks, flags, info.Kind, info.Program)
	}
	return 0
}

func cmdGC(args []string) int {
	fs := flag.NewFlagSet("gc", flag.ExitOnError)
	root := fs.String("root", "", "local store root")
	keepLast := fs.Int("keep-last", 0, "keep at least the N most recently used entries")
	maxBytes := fs.Int64("max-bytes", 0, "evict LRU entries until total size fits (0 = no size bound)")
	dryRun := fs.Bool("dry-run", false, "report what would be evicted, delete nothing")
	fs.Parse(args)
	s, err := openLocal(*root)
	if err != nil {
		return fail(err)
	}
	rep, err := s.GC(store.GCPolicy{KeepLast: *keepLast, MaxBytes: *maxBytes, DryRun: *dryRun})
	if err != nil {
		return fail(err)
	}
	printJSON(rep)
	return 0
}

func cmdVerify(args []string) int {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	root := fs.String("root", "", "local store root")
	fs.Parse(args)
	s, err := openLocal(*root)
	if err != nil {
		return fail(err)
	}
	rep, err := s.Verify()
	printJSON(rep)
	if err != nil {
		return fail(err)
	}
	fmt.Printf("store clean: %d entries, %d chunks verified\n", rep.Entries, rep.ChunksChecked)
	return 0
}

func cmdPin(args []string, pin bool) int {
	name := "unpin"
	if pin {
		name = "pin"
	}
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	root := fs.String("root", "", "local store root")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "drstore: %s needs exactly one digest\n", name)
		return cli.ExitUsage
	}
	s, err := openLocal(*root)
	if err != nil {
		return fail(err)
	}
	digest := fs.Arg(0)
	if !store.ValidDigest(digest) {
		if digest, err = s.Resolve(digest); err != nil {
			return fail(err)
		}
	}
	if pin {
		err = s.Pin(digest)
	} else {
		err = s.Unpin(digest)
	}
	if err != nil {
		return fail(err)
	}
	fmt.Printf("%sned %s\n", name, digest)
	return 0
}
