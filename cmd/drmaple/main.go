// Command drmaple runs the Maple workflow: profile inter-thread
// dependencies across seeded runs, predict untested interleavings, then
// actively schedule the program to force each prediction until the bug
// fires — logging every attempt so the failing run is immediately
// available as a pinball for DrDebug.
//
// Usage:
//
//	drmaple -workload pbzip2 -input 3,40 -o pbzip2.pinball
//	drmaple -file race.c -runs 6 -o race.pinball
package main

import (
	"flag"
	"fmt"
	"os"

	drdebug "repro"
	"repro/cmd/internal/cli"
)

func main() {
	var (
		file     = flag.String("file", "", "mini-C (.c) or assembly (.s) source file")
		workload = flag.String("workload", "", "built-in workload: "+cli.WorkloadNames())
		seed     = flag.Int64("seed", 1, "base scheduling seed")
		quantum  = flag.Int64("quantum", 100, "mean preemption quantum for profiling runs")
		input    = flag.String("input", "", "program input words, comma separated")
		runs     = flag.Int("runs", 4, "profiling runs")
		out      = flag.String("o", "maple.pinball", "output pinball path")
	)
	flag.Parse()

	if err := run(*file, *workload, *seed, *quantum, *input, *runs, *out); err != nil {
		fmt.Fprintln(os.Stderr, "drmaple:", err)
		os.Exit(1)
	}
}

func run(file, workload string, seed, quantum int64, input string, runs int, out string) error {
	prog, _, err := cli.LoadProgram(file, workload)
	if err != nil {
		return err
	}
	in, err := cli.ParseInput(input)
	if err != nil {
		return err
	}
	res, err := drdebug.FindBug(nil, prog, drdebug.LogConfig{
		Seed: seed, MeanQuantum: quantum, Input: in, RandSeed: seed,
	}, drdebug.MapleOptions{ProfileRuns: runs})
	if err != nil {
		return err
	}
	fmt.Printf("predicted %d candidate interleavings\n", res.RootsPredicted)
	if !res.Exposed {
		fmt.Printf("no bug exposed after %d active-scheduling attempts\n", res.Attempts)
		return nil
	}
	switch {
	case res.DuringProfiling:
		fmt.Println("bug exposed during profiling")
	default:
		fmt.Printf("bug exposed by forcing %v after %d attempts\n", res.Root, res.Attempts)
	}
	fmt.Printf("failure: %v\n", res.Pinball.Failure)
	if err := res.Pinball.Save(out); err != nil {
		return err
	}
	fmt.Printf("failing execution captured in %s — debug it with:\n  drdebug -pinball %s ...\n", out, out)
	return nil
}
