// Command drmatrix runs declarative scenario matrices: YAML files that
// describe workloads, axis lists (threads, sizes, seeds, quanta,
// schedulers, faults), and expected-outcome assertions. drmatrix
// expands the cross product, executes the cells in parallel under
// panic isolation and per-cell timeouts, and emits a deterministic
// pass/fail grid — a text table on stdout and, with -json, an artifact
// whose bytes are identical across identical invocations.
//
// Usage:
//
//	drmatrix run scenarios/table1.yaml
//	drmatrix run -workers 4 -json grid.json scenarios/smoke.yaml
//	drmatrix expand scenarios/table1.yaml   # preview cells, no execution
//	drmatrix faults                         # list fault axis values
//
// Exit status: 0 when every cell and aggregate check passes, 1 when
// any assertion fails, 2 on usage or spec errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/matrix"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) == 0 {
		usage()
		return 2
	}
	switch args[0] {
	case "run":
		return cmdRun(args[1:])
	case "expand":
		return cmdExpand(args[1:])
	case "faults":
		for _, name := range matrix.FaultNames() {
			fmt.Println(name)
		}
		return 0
	case "-h", "--help", "help":
		usage()
		return 0
	}
	fmt.Fprintf(os.Stderr, "drmatrix: unknown command %q\n", args[0])
	usage()
	return 2
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  drmatrix run [-workers N] [-timings] [-json FILE] [-q] SPEC.yaml
  drmatrix expand SPEC.yaml
  drmatrix faults`)
}

func cmdRun(args []string) int {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	workers := fs.Int("workers", 0, "parallel cell workers (0 = NumCPU, capped at 8)")
	timings := fs.Bool("timings", false, "include per-cell wall-clock in the artifact (breaks byte-identity)")
	jsonOut := fs.String("json", "", "write the grid artifact JSON to this path")
	quiet := fs.Bool("q", false, "suppress per-cell progress lines")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
		return 2
	}
	path := fs.Arg(0)
	spec, err := matrix.LoadSpec(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "drmatrix:", err)
		return 2
	}
	opts := matrix.RunOptions{
		Workers: *workers,
		Timings: *timings,
		BaseDir: filepath.Dir(path),
	}
	if !*quiet {
		opts.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	grid, err := matrix.Run(spec, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "drmatrix:", err)
		return 2
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "drmatrix:", err)
			return 2
		}
		if err := grid.EncodeJSON(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "drmatrix:", err)
			return 2
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "drmatrix:", err)
			return 2
		}
	}
	if err := grid.RenderText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "drmatrix:", err)
		return 2
	}
	if !grid.Pass {
		return 1
	}
	return 0
}

func cmdExpand(args []string) int {
	if len(args) != 1 {
		usage()
		return 2
	}
	spec, err := matrix.LoadSpec(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "drmatrix:", err)
		return 2
	}
	cells := spec.Cells()
	for _, c := range cells {
		fmt.Printf("%-16s %s seed=%d\n", c.Scenario.Name, c.Axes(), c.Seed)
	}
	fmt.Printf("suite %s: %d scenarios, %d cells (spec %s)\n",
		spec.Suite, len(spec.Scenarios), len(cells), spec.Digest())
	return 0
}
