// Package drdebug is the public API of the DrDebug reproduction: cyclic,
// interactive debugging of multi-threaded programs built on deterministic
// record/replay (PinPlay-style pinballs) and highly precise dynamic
// slicing, after "DrDebug: Deterministic Replay based Cyclic Debugging
// with Dynamic Slicing" (CGO 2014).
//
// The workflow mirrors the paper's Figure 2:
//
//	prog, _  := drdebug.Compile("bug.c", source)        // mini-C -> machine code
//	sess, _  := drdebug.RecordFailure(prog, cfg, 0)     // capture buggy region
//	m, _     := sess.Replay(nil)                        // deterministic replay
//	sl, _    := sess.SliceAtFailure()                   // dynamic slice
//	spb, _, _ := sess.ExecutionSlice(sl)                // slice pinball (§4)
//	st, _    := sess.NewStepper(sl)                     // step the execution slice
//
// Programs are written in mini-C (package cc) or assembly (package asm)
// and execute on the deterministic multi-threaded VM substrate; bugs can
// be exposed with the integrated Maple reimplementation (FindBug) and the
// interactive gdb-style debugger (NewDebugger) drives the whole loop.
package drdebug

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/debugger"
	"repro/internal/isa"
	"repro/internal/maple"
	"repro/internal/pinball"
	"repro/internal/pinplay"
	"repro/internal/slice"
	"repro/internal/supervisor"
	"repro/internal/tracer"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// Core workflow types, re-exported.
type (
	// Program is an executable for the VM substrate.
	Program = isa.Program
	// Session is one cyclic-debugging session over a recorded pinball.
	Session = core.Session
	// Stepper walks an execution slice forward, statement by statement.
	Stepper = core.Stepper
	// StepPoint is one stop of a Stepper.
	StepPoint = core.StepPoint
	// Pinball is a captured execution region.
	Pinball = pinball.Pinball
	// Slice is a computed backward dynamic slice.
	Slice = slice.Slice
	// SliceOptions controls slicer precision features.
	SliceOptions = slice.Options
	// ParallelSlicer is the sharded parallel slicing engine.
	ParallelSlicer = slice.ParallelSlicer
	// ParallelSliceOptions configures the parallel engine's build phase.
	ParallelSliceOptions = slice.ParallelOptions
	// SliceEngineStats reports the parallel engine's accounting.
	SliceEngineStats = slice.EngineStats
	// SliceFile is the persisted, session-independent form of a slice.
	SliceFile = slice.File
	// Trace is the dynamic def/use information collected from a replay.
	Trace = tracer.Trace
	// LogConfig configures native executions (seed, input, quanta).
	LogConfig = pinplay.LogConfig
	// RegionSpec selects an execution region in skip/length form.
	RegionSpec = pinplay.RegionSpec
	// ReplayOptions controls checkpoint validation, limits and observers.
	ReplayOptions = pinplay.ReplayOptions
	// ReplayReport summarises what a replay verified.
	ReplayReport = pinplay.ReplayReport
	// Divergence pins a replay divergence to its first bad window.
	Divergence = pinplay.Divergence
	// DivergenceError is the typed replay-divergence failure.
	DivergenceError = pinplay.DivergenceError
	// Limits bounds an execution: instruction budget, deadline, memory.
	Limits = vm.Limits
	// Machine is the VM executing a program.
	Machine = vm.Machine
	// Debugger is the interactive gdb-style front-end.
	Debugger = debugger.Debugger
	// MapleResult reports a bug exposed by the Maple workflow.
	MapleResult = maple.Result
	// MapleOptions configures the Maple workflow.
	MapleOptions = maple.Options
	// Workload is a registered benchmark program.
	Workload = workloads.Workload
	// SalvageReport describes a pinball salvage attempt.
	SalvageReport = pinball.SalvageReport
	// SessionError is the typed failure of a supervised session phase.
	SessionError = supervisor.SessionError
	// PanicError is a panic the supervisor recovered and converted.
	PanicError = supervisor.PanicError
	// HangError is the supervisor watchdog's verdict on a hung phase.
	HangError = supervisor.HangError
	// SupervisorOptions tunes the self-healing supervisor's retry policy.
	SupervisorOptions = supervisor.Options
	// SupervisorReport is the structured outcome of a supervised phase.
	SupervisorReport = supervisor.Report
	// SupervisedReplayResult is what a supervised replay hands back.
	SupervisedReplayResult = supervisor.ReplayResult
	// Eviction is one evicted flight-recorder window in a ring pinball's
	// gap manifest (retained hash included for bridge verification).
	Eviction = pinball.Eviction
	// Recipe is the recording configuration a gapped pinball retains so
	// gap bridging can re-derive evicted windows.
	Recipe = pinball.Recipe
	// RingStats reports what flight-recorder mode kept and evicted.
	RingStats = pinplay.RingStats
	// BridgeReport summarises a gap-bridging replay: windows re-derived,
	// instructions re-executed, and which windows failed verification.
	BridgeReport = pinplay.BridgeReport
	// BridgeError is the typed failure of a gap bridge whose re-derived
	// window hash did not match the retained one.
	BridgeError = pinplay.BridgeError
	// Provenance tags trace content and slice edges as exact, bridged, or
	// estimated (flight-recorder mode).
	Provenance = tracer.Provenance
	// ProvSummary is a slice's provenance breakdown.
	ProvSummary = slice.ProvSummary
)

// Provenance levels, re-exported.
const (
	ProvExact     = tracer.ProvExact
	ProvBridged   = tracer.ProvBridged
	ProvEstimated = tracer.ProvEstimated
)

// Typed failure classes, re-exported so tools can classify errors with
// errors.Is: the pinball.Err* family means "the pinball file is bad"
// (unreadable, corrupt, truncated, wrong version); ErrReplay means "the
// pinball loaded but its replay failed" (checkpoint divergence, schedule
// mismatch, or an execution limit hit).
var (
	ErrNotPinball  = pinball.ErrNotPinball
	ErrVersionSkew = pinball.ErrVersionSkew
	ErrTruncated   = pinball.ErrTruncated
	ErrCorrupt     = pinball.ErrCorrupt
	ErrReplay      = pinplay.ErrReplay
	// ErrLimit marks replays cut off by an execution limit (budget,
	// deadline, memory cap, cancellation) rather than a divergence.
	ErrLimit = pinplay.ErrLimit
	// ErrUnsalvageable marks damaged pinball files Salvage cannot repair.
	ErrUnsalvageable = pinball.ErrUnsalvageable
	// ErrBridge marks gap-bridging replays whose re-derived window failed
	// hash verification (a subclass of ErrReplay).
	ErrBridge = pinplay.ErrBridge
)

// Timeout builds Limits bounding an execution by an instruction budget
// and a wall-clock duration (either may be zero for unbounded).
func Timeout(steps int64, d time.Duration) Limits { return vm.Timeout(steps, d) }

// Compile builds a mini-C source string into a program.
func Compile(name, src string) (*Program, error) {
	return cc.CompileSource(name, src)
}

// CompileFile builds a mini-C (.c) or assembly (.s) source file.
func CompileFile(path string) (*Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("drdebug: %w", err)
	}
	if len(path) > 2 && path[len(path)-2:] == ".s" {
		return asm.Assemble(path, string(src))
	}
	return cc.CompileSource(path, string(src))
}

// Assemble builds an assembly source string into a program.
func Assemble(name, src string) (*Program, error) {
	return asm.Assemble(name, src)
}

// RecordRegion captures an execution region (fast-forward SkipMain, then
// record LengthMain main-thread instructions) and opens a session on the
// resulting pinball.
func RecordRegion(prog *Program, cfg LogConfig, spec RegionSpec) (*Session, error) {
	return core.RecordRegion(prog, cfg, spec)
}

// RecordFailure captures from skipMain to the program's failure point; it
// fails if the execution does not fail under the configured schedule.
func RecordFailure(prog *Program, cfg LogConfig, skipMain int64) (*Session, error) {
	return core.RecordFailure(prog, cfg, skipMain)
}

// Open starts a session over an existing pinball (e.g. one produced by
// FindBug).
func Open(prog *Program, pb *Pinball) *Session { return core.Open(prog, pb) }

// LoadSession opens a session from a pinball file.
func LoadSession(prog *Program, pinballPath string) (*Session, error) {
	return core.LoadSession(prog, pinballPath)
}

// LoadPinball reads a pinball file.
func LoadPinball(path string) (*Pinball, error) { return pinball.Load(path) }

// SalvagePinball recovers a usable pinball from a damaged file: the
// longest checksum-valid prefix of sections is kept, and an interrupted
// recording journal is truncated to its last intact divergence
// checkpoint. The report is non-nil even when salvage fails.
func SalvagePinball(path string) (*Pinball, *SalvageReport, error) {
	return pinball.Salvage(path)
}

// LoadSessionSalvage is LoadSession with automatic salvage of a damaged
// pinball file; the report is nil when the file was intact.
func LoadSessionSalvage(prog *Program, pinballPath string) (*Session, *SalvageReport, error) {
	return core.LoadSessionSalvage(prog, pinballPath)
}

// SupervisedReplay replays a pinball under the self-healing supervisor:
// panic isolation, watchdog, retry-with-backoff, and checkpoint-anchored
// degraded recovery when the replay keeps diverging.
func SupervisedReplay(prog *Program, pb *Pinball, opts SupervisorOptions, ropts ReplayOptions) (*SupervisedReplayResult, error) {
	return supervisor.Replay(prog, pb, opts, ropts)
}

// LoadSliceFile reads a slice file saved with Session.SaveSlice.
func LoadSliceFile(path string) (*SliceFile, error) { return slice.LoadFile(path) }

// Replay deterministically re-executes a pinball and returns the machine
// at the end of the region (or at the reproduced failure). Divergence
// checkpoints recorded in the pinball are verified along the way.
func Replay(prog *Program, pb *Pinball) (*Machine, error) {
	return pinplay.Replay(prog, pb, nil)
}

// ReplayWithOptions is Replay with full control over checkpoint
// validation policy, execution limits and observers, returning the
// verification report. It dispatches on the pinball kind, so slice
// pinballs replay correctly too.
func ReplayWithOptions(prog *Program, pb *Pinball, opts ReplayOptions) (*Machine, *ReplayReport, error) {
	return pinplay.ReplayWith(prog, pb, opts)
}

// NewDebugger creates the interactive debugger for a program.
func NewDebugger(prog *Program, cfg LogConfig) *Debugger {
	return debugger.New(prog, cfg)
}

// FindBug runs the Maple workflow (profiling + active scheduling with
// logging) until the program fails, returning the failing pinball ready
// for replay-based debugging. Cancelling ctx (or letting its deadline
// pass) stops the exploration mid-run; nil means no cancellation.
func FindBug(ctx context.Context, prog *Program, cfg LogConfig, opts MapleOptions) (*MapleResult, error) {
	return maple.FindBug(ctx, prog, cfg, opts)
}

// WorkloadByName returns one of the registered benchmark programs (the
// PARSEC-like and SPEC OMP-like kernels and the Table 1 bugs).
func WorkloadByName(name string) (*Workload, error) { return workloads.ByName(name) }

// Workloads lists every registered benchmark program.
func Workloads() []*Workload { return workloads.All() }

// DefaultSliceOptions is the paper's default slicer configuration:
// control dependences on, CFG refinement on, save/restore pruning on with
// MaxSave=10.
func DefaultSliceOptions() SliceOptions { return slice.DefaultOptions() }

// NewParallelSlicer builds the sharded parallel slicing engine over a
// collected trace. Slice results are bit-identical to the sequential
// slicer for every criterion and worker count.
func NewParallelSlicer(prog *Program, tr *Trace, opts SliceOptions, popts ParallelSliceOptions) (*ParallelSlicer, error) {
	return slice.NewParallel(prog, tr, opts, popts)
}

// CFGCacheStats reports the process-lifetime CFG/post-dominator cache
// counters.
func CFGCacheStats() cfg.CacheStats { return cfg.GraphCacheStats() }

// SliceEngineCacheStats reports the process-lifetime parallel-engine
// cache counters (engines keyed by pinball identity and slice options).
func SliceEngineCacheStats() slice.EngineCacheStats { return slice.GetEngineCacheStats() }
